//! Box-constrained search spaces.

use atlas_math::linalg::l2_distance;
use rand::Rng;

/// A box-constrained, continuous search space `[lower, upper]^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl SearchSpace {
    /// Creates a search space from per-dimension bounds. Panics if the
    /// bounds have different lengths or any lower bound exceeds its upper
    /// bound (programming error).
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound length mismatch");
        assert!(
            lower.iter().zip(upper.iter()).all(|(l, u)| l <= u),
            "lower bounds must not exceed upper bounds"
        );
        Self { lower, upper }
    }

    /// The unit hypercube `[0, 1]^dim`.
    pub fn unit(dim: usize) -> Self {
        Self::new(vec![0.0; dim], vec![1.0; dim])
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Uniformly samples one point.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| l + (u - l) * rng.random::<f64>())
            .collect()
    }

    /// Uniformly samples `n` points.
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Clamps a point into the box.
    pub fn clamp(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .map(|(v, (l, u))| v.clamp(*l, *u))
            .collect()
    }

    /// Whether `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lower.iter().zip(self.upper.iter()))
                .all(|(v, (l, u))| *v >= *l - 1e-12 && *v <= *u + 1e-12)
    }

    /// Maps a point into the unit cube.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .map(|(v, (l, u))| if u > l { (v - l) / (u - l) } else { 0.0 })
            .collect()
    }

    /// Maps a unit-cube point back into the box.
    pub fn denormalize(&self, u: &[f64]) -> Vec<f64> {
        u.iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .map(|(v, (l, up))| l + v.clamp(0.0, 1.0) * (up - l))
            .collect()
    }

    /// Euclidean distance between two points in normalised (unit-cube)
    /// coordinates — the parameter-distance metric of Eq. 2.
    pub fn normalized_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        l2_distance(&self.normalize(a), &self.normalize(b))
    }

    /// Samples uniformly inside the ball `|x − centre|₂ ≤ radius` (in
    /// normalised coordinates) intersected with the box, by rejection with
    /// a clamped fallback. Implements the trust-region constraint of Eq. 2.
    pub fn sample_near<R: Rng + ?Sized>(
        &self,
        centre: &[f64],
        radius: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        for _ in 0..64 {
            let candidate = self.sample(rng);
            if self.normalized_distance(&candidate, centre) <= radius {
                return candidate;
            }
        }
        // Fallback: interpolate towards the centre until inside the ball.
        let mut candidate = self.sample(rng);
        let mut t = 1.0;
        while self.normalized_distance(&candidate, centre) > radius && t > 1e-3 {
            t *= 0.5;
            candidate = candidate
                .iter()
                .zip(centre.iter())
                .map(|(c, m)| m + (c - m) * t)
                .collect();
        }
        self.clamp(&candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![0.0, -5.0, 10.0], vec![1.0, 5.0, 20.0])
    }

    #[test]
    fn samples_stay_inside_bounds() {
        let mut rng = seeded_rng(1);
        let s = space();
        for x in s.sample_n(500, &mut rng) {
            assert!(s.contains(&x));
        }
    }

    #[test]
    fn clamp_and_contains() {
        let s = space();
        let clamped = s.clamp(&[-1.0, 100.0, 15.0]);
        assert_eq!(clamped, vec![0.0, 5.0, 15.0]);
        assert!(s.contains(&clamped));
        assert!(!s.contains(&[0.5, 0.0, 100.0]));
        assert!(!s.contains(&[0.5, 0.0]));
    }

    #[test]
    fn normalization_roundtrips() {
        let s = space();
        let x = vec![0.3, 2.5, 12.0];
        let u = s.normalize(&x);
        assert!(u.iter().all(|v| (0.0..=1.0).contains(v)));
        let back = s.denormalize(&u);
        for (a, b) in back.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_dimension_normalizes_to_zero() {
        let s = SearchSpace::new(vec![2.0], vec![2.0]);
        assert_eq!(s.normalize(&[2.0]), vec![0.0]);
        assert_eq!(s.denormalize(&[0.7]), vec![2.0]);
    }

    #[test]
    fn normalized_distance_is_scale_invariant() {
        let s = space();
        let a = vec![0.0, -5.0, 10.0];
        let b = vec![1.0, 5.0, 20.0];
        // Opposite corners of the box are √3 apart in unit coordinates.
        assert!((s.normalized_distance(&a, &b) - 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.normalized_distance(&a, &a), 0.0);
    }

    #[test]
    fn sample_near_respects_the_radius() {
        let mut rng = seeded_rng(2);
        let s = space();
        let centre = vec![0.5, 0.0, 15.0];
        for _ in 0..200 {
            let x = s.sample_near(&centre, 0.3, &mut rng);
            assert!(s.contains(&x));
            assert!(
                s.normalized_distance(&x, &centre) <= 0.3 + 1e-9,
                "point too far: {:?}",
                x
            );
        }
    }

    #[test]
    #[should_panic(expected = "lower bounds must not exceed")]
    fn inverted_bounds_panic() {
        let _ = SearchSpace::new(vec![1.0], vec![0.0]);
    }
}
