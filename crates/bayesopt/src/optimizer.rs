//! The Bayesian-optimisation loop.
//!
//! [`BayesOpt`] keeps the observation history, fits a [`Surrogate`] on
//! demand, and proposes the next query point(s) either by maximising an
//! [`Acquisition`] over a random candidate set or by (parallel) Thompson
//! sampling — the mechanism used by all three Atlas stages. Objective
//! evaluation is left to the caller, which is what allows the Atlas core to
//! run the expensive simulator queries in parallel worker threads.

use crate::acquisition::Acquisition;
use crate::space::SearchSpace;
use crate::surrogate::Surrogate;
use atlas_math::rng::Rng64;

/// One evaluated point of the black-box objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The queried input.
    pub x: Vec<f64>,
    /// The observed objective value (to be minimised).
    pub y: f64,
}

/// A generic Bayesian-optimisation driver (minimisation).
pub struct BayesOpt<S: Surrogate> {
    space: SearchSpace,
    surrogate: S,
    observations: Vec<Observation>,
    /// Clamped inputs/targets mirroring `observations`, kept as flat reusable
    /// buffers so refits borrow slices instead of re-cloning every vector.
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Whether the surrogate has missed observations and needs a full refit.
    surrogate_stale: bool,
    /// Retained-observation cap for long-horizon loops (`None` keeps all).
    window: Option<usize>,
    /// Observations ever recorded (never decremented by window eviction —
    /// drives the warm-up phase, which would otherwise re-enter forever
    /// when the window capacity is below `initial_random`).
    observed_total: usize,
    candidates_per_suggest: usize,
    initial_random: usize,
    iteration: usize,
    scoring_threads: Option<usize>,
}

impl<S: Surrogate> BayesOpt<S> {
    /// Creates an optimiser over `space` using `surrogate`.
    pub fn new(space: SearchSpace, surrogate: S) -> Self {
        Self {
            space,
            surrogate,
            observations: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            surrogate_stale: false,
            window: None,
            observed_total: 0,
            candidates_per_suggest: 2000,
            initial_random: 10,
            iteration: 0,
            scoring_threads: None,
        }
    }

    /// Sets the number of random candidates scored per suggestion (the
    /// paper samples "tens of thousands"; smaller values are faster and
    /// adequate for low-dimensional spaces).
    pub fn with_candidates(mut self, n: usize) -> Self {
        self.candidates_per_suggest = n.max(2);
        self
    }

    /// Sets the number of purely random warm-up suggestions before the
    /// surrogate is trusted (the paper uses 100 exploration iterations).
    pub fn with_initial_random(mut self, n: usize) -> Self {
        self.initial_random = n;
        self
    }

    /// Bounds the loop for long horizons: the policy is forwarded to the
    /// surrogate ([`Surrogate::set_window`], so the two can never
    /// disagree) and, for bounded policies, the observation history and
    /// flat refit buffers evict their oldest entry once the capacity is
    /// reached. Eviction moves the retained entries' `Vec` headers in
    /// place — the point buffers themselves are reused, never re-cloned —
    /// so the loop's memory plateaus at the capacity, and the incremental
    /// and full-refit paths keep learning from the same retained window.
    /// The incumbent [`BayesOpt::best`] becomes the best *retained*
    /// observation; the random warm-up still ends after `initial_random`
    /// total observations even when the capacity is smaller.
    pub fn with_window(mut self, window: crate::WindowPolicy) -> Self {
        self.window = window.capacity();
        let handled = self.surrogate.set_window(window);
        self.evict_beyond_window();
        // Installing a window mid-run (observations already recorded) may
        // have evicted history the surrogate was fitted on; unless the
        // surrogate re-established its own state, schedule a full refit on
        // the retained window. The usual pre-observation builder path (and
        // a window-capable surrogate) keeps the incremental route.
        if !handled && !self.observations.is_empty() {
            self.surrogate_stale = true;
        }
        self
    }

    /// Switches how the surrogate maintains its hyper-parameter grid
    /// factors ([`Surrogate::set_grid_maintenance`]). Under
    /// [`atlas_gp::GridMaintenance::Elastic`] the GP surrogate keeps live
    /// Cholesky factors only for its hot-set candidates, with periodic
    /// tournament refreshes re-selecting over the full grid; `Full` (the
    /// default) keeps every factor live, bit for bit the historical
    /// behaviour. Surrogates without a factor grid ignore the policy; if
    /// one does so after observations were already recorded, a full refit
    /// is scheduled so the surrogate can never be silently stale.
    pub fn with_grid_maintenance(mut self, grid_maintenance: crate::GridMaintenance) -> Self {
        let handled = self.surrogate.set_grid_maintenance(grid_maintenance);
        if !handled && !self.observations.is_empty() {
            self.surrogate_stale = true;
        }
        self
    }

    /// Switches the surrogate's posterior basis ([`Surrogate::set_basis`]).
    /// Under [`atlas_gp::SurrogateBasis::Inducing`] the GP surrogate
    /// compresses the retained history through `m` pseudo-inputs once the
    /// window outgrows the budget, so observes cost O(m²) and batch scoring
    /// one m×q sweep — independent of the retained count; `Exact` (the
    /// default) keeps the full-rank posterior, bit for bit the historical
    /// behaviour. Surrogates without a kernel-matrix posterior ignore the
    /// basis; if one does so after observations were already recorded, a
    /// full refit is scheduled so the surrogate can never be silently
    /// stale.
    pub fn with_basis(mut self, basis: crate::SurrogateBasis) -> Self {
        let handled = self.surrogate.set_basis(basis);
        if !handled && !self.observations.is_empty() {
            self.surrogate_stale = true;
        }
        self
    }

    /// Pins the number of scoped threads used for candidate scoring
    /// (default: the machine's available parallelism, capped at 8). Results
    /// are identical for every thread count — chunks are merged in
    /// candidate order — so this is a performance knob, not a semantic one.
    pub fn with_scoring_threads(mut self, n: usize) -> Self {
        self.scoring_threads = Some(n.max(1));
        self
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The surrogate model (read access).
    pub fn surrogate(&self) -> &S {
        &self.surrogate
    }

    /// All observations so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of completed observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The incumbent best (minimum-objective) observation.
    pub fn best(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .min_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Records an evaluated observation (clamped into the space). The
    /// surrogate is *not* updated; the next [`BayesOpt::fit`] refits it.
    pub fn observe(&mut self, x: Vec<f64>, y: f64) {
        let x = self.space.clamp(&x);
        self.observations.push(Observation { x: x.clone(), y });
        self.xs.push(x);
        self.ys.push(y);
        self.observed_total += 1;
        self.surrogate_stale = true;
        self.evict_beyond_window();
    }

    /// Drops the oldest retained observations past the configured window.
    fn evict_beyond_window(&mut self) {
        let Some(cap) = self.window else {
            return;
        };
        while self.observations.len() > cap {
            // `Vec::remove(0)` shifts the retained headers down without
            // touching (or re-cloning) the heap buffers they own.
            self.observations.remove(0);
            self.xs.remove(0);
            self.ys.remove(0);
        }
    }

    /// Records an evaluated observation and feeds it straight into the
    /// surrogate via [`Surrogate::observe_one`] — O(n²) for the GP instead
    /// of a full refit. If the surrogate has no incremental path (or has
    /// already missed observations), it is marked stale and the next
    /// [`BayesOpt::fit`] — or the next suggestion, which repairs staleness
    /// automatically — performs the usual full refit.
    pub fn observe_and_update(&mut self, x: Vec<f64>, y: f64, rng: &mut Rng64) {
        let x = self.space.clamp(&x);
        self.observations.push(Observation { x: x.clone(), y });
        self.ys.push(y);
        if !self.surrogate_stale && !self.surrogate.observe_one(&x, y, rng) {
            self.surrogate_stale = true;
        }
        self.xs.push(x);
        self.observed_total += 1;
        self.evict_beyond_window();
    }

    /// Records a whole round of evaluated observations and feeds them into
    /// the surrogate in one [`Surrogate::observe_many`] call — the GP
    /// amortises the bordering updates across the round (bit-identical to
    /// per-point [`BayesOpt::observe_and_update`] calls). A surrogate that
    /// could not absorb the round incrementally is marked stale and fully
    /// refitted on the next [`BayesOpt::fit`] or suggestion.
    pub fn observe_and_update_batch(&mut self, batch: Vec<(Vec<f64>, f64)>, rng: &mut Rng64) {
        let batch: Vec<(Vec<f64>, f64)> = batch
            .into_iter()
            .map(|(x, y)| (self.space.clamp(&x), y))
            .collect();
        for (x, y) in &batch {
            self.observations.push(Observation {
                x: x.clone(),
                y: *y,
            });
            self.xs.push(x.clone());
            self.ys.push(*y);
            self.observed_total += 1;
        }
        if !self.surrogate_stale && !self.surrogate.observe_many(batch, rng) {
            self.surrogate_stale = true;
        }
        self.evict_beyond_window();
    }

    /// Refits the surrogate on all observations. A no-op when every
    /// observation has already been absorbed incrementally via
    /// [`BayesOpt::observe_and_update`].
    pub fn fit(&mut self, rng: &mut Rng64) {
        if !self.surrogate_stale {
            return;
        }
        self.surrogate.fit(&self.xs, &self.ys, rng);
        self.surrogate_stale = false;
    }

    /// Whether the optimiser is still in its random warm-up phase. Counts
    /// every observation ever recorded, not just the retained ones, so a
    /// window capacity below `initial_random` cannot re-enter warm-up.
    pub fn in_warmup(&self) -> bool {
        self.observed_total < self.initial_random
    }

    /// Proposes the next query point by maximising `acquisition` over a
    /// fresh random candidate set (random during warm-up). If observations
    /// arrived that the surrogate has not absorbed (via [`BayesOpt::fit`]
    /// or an incremental [`BayesOpt::observe_and_update`]), the surrogate
    /// is refitted first.
    ///
    /// Candidate prediction fans out over scoped threads (deterministically
    /// merged in candidate order); any acquisition randomness is drawn
    /// serially afterwards, in candidate order, so the whole selection is
    /// byte-for-byte reproducible for a given RNG state regardless of the
    /// thread count.
    pub fn suggest(&mut self, acquisition: Acquisition, rng: &mut Rng64) -> Vec<f64> {
        self.iteration += 1;
        if self.in_warmup() {
            return self.space.sample(rng);
        }
        // A stale surrogate (observations recorded without an incremental
        // update — e.g. plain `observe`, or a surrogate whose `observe_one`
        // declined) is refitted here, so a fit-less
        // suggest→observe_and_update loop can never score candidates with
        // a model that silently stopped learning.
        self.fit(rng);
        let best = self.best().map(|o| o.y).unwrap_or(0.0);
        let mut candidates = self.space.sample_n(self.candidates_per_suggest, rng);
        let preds = self.predict_candidates(&candidates);
        let mut best_idx = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, (mean, std)) in preds.into_iter().enumerate() {
            let score = acquisition.score(mean, std, best, self.iteration, rng);
            if score > best_score {
                best_score = score;
                best_idx = i;
            }
        }
        candidates.swap_remove(best_idx)
    }

    /// Predicts a candidate set for acquisition ranking. A surrogate with
    /// its own whole-batch ranking path ([`Surrogate::fast_ranking`], e.g.
    /// the GP with mixed-precision scoring) is handed the entire set in one
    /// call — it threads the batch itself, and its drift guard counts whole
    /// suggestions. Otherwise the set is split into contiguous chunks over
    /// scoped worker threads; [`Surrogate::predict_batch`] is point-wise by
    /// contract, so chunking never changes a result and the merged output
    /// is identical for every thread count.
    fn predict_candidates(&self, candidates: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if self.surrogate.fast_ranking() {
            return self.surrogate.predict_batch_ranking(candidates);
        }
        atlas_math::parallel::par_chunks_map(candidates, 64, self.scoring_threads, |_, chunk| {
            self.surrogate.predict_batch(chunk)
        })
    }

    /// Proposes `q` query points by parallel Thompson sampling: each point
    /// comes from one coherent posterior draw evaluated on its own random
    /// candidate set, optionally combined with an analytic penalty term via
    /// `score`, which maps `(candidate, drawn objective value)` to the
    /// quantity actually minimised (identity on the drawn value reproduces
    /// plain Thompson sampling).
    pub fn suggest_thompson_batch<F>(
        &mut self,
        q: usize,
        rng: &mut Rng64,
        score: F,
    ) -> Vec<Vec<f64>>
    where
        F: Fn(&[f64], f64) -> f64 + Sync,
    {
        self.iteration += 1;
        let q = q.max(1);
        if self.in_warmup() {
            return self.space.sample_n(q, rng);
        }
        // See `suggest`: never propose from a surrogate that missed
        // observations.
        self.fit(rng);
        let mut proposals = Vec::with_capacity(q);
        for _ in 0..q {
            let candidates = self.space.sample_n(self.candidates_per_suggest, rng);
            let draws = self.surrogate.thompson_batch(&candidates, rng);
            let best_idx = argmin_parallel(&candidates, &draws, &score, self.scoring_threads);
            proposals.push(candidates[best_idx].clone());
        }
        proposals
    }

    /// Current iteration counter (number of suggestion rounds issued).
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

/// Index of the candidate with the lowest `score(candidate, draw)`, split
/// over scoped threads when the set is large. The serial loop keeps the
/// *first* strict minimum; chunk winners are merged in chunk order with the
/// same strict comparison, so the result is identical for every thread
/// count.
fn argmin_parallel<F>(
    candidates: &[Vec<f64>],
    draws: &[f64],
    score: &F,
    scoring_threads: Option<usize>,
) -> usize
where
    F: Fn(&[f64], f64) -> f64 + Sync,
{
    // Each chunk reports its first strict minimum as (value, global index);
    // merging those in chunk order with the same strict comparison yields
    // the global first strict minimum.
    let chunk_minima =
        atlas_math::parallel::par_chunks_map(candidates, 256, scoring_threads, |offset, chunk| {
            let mut best_val = f64::INFINITY;
            let mut best_idx = offset;
            for (i, c) in chunk.iter().enumerate() {
                let v = score(c, draws[offset + i]);
                if v < best_val {
                    best_val = v;
                    best_idx = offset + i;
                }
            }
            vec![(best_val, best_idx)]
        });
    let mut best_val = f64::INFINITY;
    let mut best_idx = 0;
    for (val, idx) in chunk_minima {
        if val < best_val {
            best_val = val;
            best_idx = idx;
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::GpSurrogate;
    use atlas_math::rng::seeded_rng;

    /// A 2-D bowl with its minimum at (0.7, 0.2).
    fn objective(x: &[f64]) -> f64 {
        (x[0] - 0.7).powi(2) + (x[1] - 0.2).powi(2)
    }

    fn make_optimizer() -> BayesOpt<GpSurrogate> {
        BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
            .with_candidates(500)
            .with_initial_random(8)
    }

    #[test]
    fn warmup_suggestions_are_random_but_in_bounds() {
        let mut rng = seeded_rng(1);
        let mut bo = make_optimizer();
        assert!(bo.in_warmup());
        let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
        assert!(bo.space().contains(&x));
        assert!(bo.is_empty());
    }

    #[test]
    fn gp_ei_converges_near_the_optimum() {
        let mut rng = seeded_rng(2);
        let mut bo = make_optimizer();
        for _ in 0..35 {
            let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
            let y = objective(&x);
            bo.observe(x, y);
            bo.fit(&mut rng);
        }
        let best = bo.best().unwrap();
        assert!(
            best.y < 0.02,
            "best objective {} at {:?} should be near zero",
            best.y,
            best.x
        );
        assert_eq!(bo.len(), 35);
    }

    #[test]
    fn thompson_batch_converges_too() {
        let mut rng = seeded_rng(3);
        let mut bo = make_optimizer();
        for _ in 0..12 {
            let batch = bo.suggest_thompson_batch(4, &mut rng, |_, v| v);
            assert_eq!(batch.len(), 4);
            for x in batch {
                let y = objective(&x);
                bo.observe(x, y);
            }
            bo.fit(&mut rng);
        }
        assert!(bo.best().unwrap().y < 0.05, "best {}", bo.best().unwrap().y);
    }

    #[test]
    fn thompson_penalty_changes_the_selection() {
        let mut rng = seeded_rng(4);
        let mut bo = make_optimizer().with_initial_random(4);
        // Seed with a coarse grid so the surrogate has signal.
        for i in 0..5 {
            for j in 0..5 {
                let x = vec![i as f64 / 4.0, j as f64 / 4.0];
                let y = objective(&x);
                bo.observe(x, y);
            }
        }
        bo.fit(&mut rng);
        // Heavily penalise the first coordinate: proposals should move
        // towards x0 = 0 even though the objective minimum is at 0.7.
        let penalised = bo.suggest_thompson_batch(8, &mut rng, |x, v| v + 5.0 * x[0]);
        let mean_x0: f64 = penalised.iter().map(|x| x[0]).sum::<f64>() / penalised.len() as f64;
        let plain = bo.suggest_thompson_batch(8, &mut rng, |_, v| v);
        let plain_x0: f64 = plain.iter().map(|x| x[0]).sum::<f64>() / plain.len() as f64;
        assert!(
            mean_x0 < plain_x0,
            "penalised mean x0 {mean_x0} should be below plain {plain_x0}"
        );
    }

    #[test]
    fn windowed_history_plateaus_and_still_converges() {
        use crate::surrogate::Surrogate;
        use atlas_gp::WindowPolicy;
        let cap = 30;
        let mut rng = seeded_rng(6);
        // `with_window` forwards the policy into the surrogate itself, so
        // a plain GpSurrogate needs no separate windowed construction.
        let mut bo = BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
            .with_candidates(400)
            .with_initial_random(8)
            .with_window(WindowPolicy::SlidingWindow { capacity: cap });
        for _ in 0..60 {
            let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
            let y = objective(&x);
            bo.observe_and_update(x, y, &mut rng);
            // Both the optimiser history and the surrogate plateau at cap.
            assert!(bo.len() <= cap);
            assert!(bo.surrogate().gp().len() <= cap);
        }
        assert_eq!(bo.len(), cap);
        assert_eq!(bo.surrogate().gp().len(), cap);
        assert!(
            bo.best().unwrap().y < 0.05,
            "windowed BO still converges: best {}",
            bo.best().unwrap().y
        );
        // A full refit sees exactly the retained window: a fresh windowed
        // surrogate fitted on the retained history agrees with the
        // incrementally maintained one (to downdate rounding error).
        let mut fresh = GpSurrogate::windowed(WindowPolicy::SlidingWindow { capacity: cap });
        let xs: Vec<Vec<f64>> = bo.observations().iter().map(|o| o.x.clone()).collect();
        let ys: Vec<f64> = bo.observations().iter().map(|o| o.y).collect();
        fresh.fit(&xs, &ys, &mut rng);
        let (im, is) = bo.surrogate().predict(&[0.5, 0.5]);
        let (fm, fs) = fresh.predict(&[0.5, 0.5]);
        assert!(
            (im - fm).abs() < 1e-7 && (is - fs).abs() < 1e-7,
            "incremental windowed surrogate ({im}, {is}) must match a full \
             refit on the retained window ({fm}, {fs})"
        );
    }

    #[test]
    fn elastic_grid_maintenance_threads_into_the_gp_surrogate() {
        use atlas_gp::GridMaintenance;
        let mut rng = seeded_rng(13);
        let mut bo = BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
            .with_candidates(200)
            .with_initial_random(6)
            .with_grid_maintenance(GridMaintenance::Elastic {
                hot_set: 6,
                refresh_every: 16,
            });
        for _ in 0..30 {
            let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
            let y = objective(&x);
            bo.observe_and_update(x, y, &mut rng);
            // Only the hot set keeps live factors throughout the loop.
            let stats = bo.surrogate().gp().grid_stats();
            assert_eq!(stats.hot, 6);
            assert_eq!(stats.grid_len, 35);
        }
        assert!(
            bo.best().unwrap().y < 0.1,
            "elastic BO still converges: best {}",
            bo.best().unwrap().y
        );
        // Switching back mid-run revives every factor via a rebuild.
        bo = bo.with_grid_maintenance(GridMaintenance::Full);
        assert_eq!(bo.surrogate().gp().grid_stats().hot, 35);
    }

    #[test]
    fn inducing_basis_threads_into_the_gp_surrogate() {
        use atlas_gp::{InducingSelection, SurrogateBasis};
        let mut rng = seeded_rng(17);
        let mut bo = BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
            .with_candidates(200)
            .with_initial_random(6)
            .with_basis(SurrogateBasis::Inducing {
                m: 12,
                selection: InducingSelection::GreedyVariance,
                refresh_every: 16,
            });
        for _ in 0..40 {
            let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
            let y = objective(&x);
            bo.observe_and_update(x, y, &mut rng);
        }
        // The history outgrew the budget: 12 pseudo-inputs summarise all
        // 40 retained observations and factor memory plateaued at two
        // m×m packed triangles per live candidate.
        let gp = bo.surrogate().gp();
        assert!(gp.basis_active());
        assert_eq!(gp.inducing_len(), 12);
        assert_eq!(gp.len(), 40);
        assert!(gp.factor_bytes() <= gp.grid_len() * 2 * (12 * 13 / 2) * 8);
        assert!(
            bo.best().unwrap().y < 0.1,
            "sparse BO still converges: best {}",
            bo.best().unwrap().y
        );
        // Switching back mid-run restores the exact full-rank posterior.
        bo = bo.with_basis(SurrogateBasis::Exact);
        assert!(!bo.surrogate().gp().basis_active());
        assert!(bo.surrogate().gp().factor_bytes() > bo.len() * bo.len() * 4);
    }

    #[test]
    fn installing_a_window_mid_run_forces_a_refit_on_windowless_surrogates() {
        use atlas_gp::WindowPolicy;
        // A surrogate with the default no-op `set_window` keeps whatever it
        // was fitted on; evicting the optimiser history out from under it
        // must therefore schedule a full refit on the retained window.
        struct CountingSurrogate {
            fits: usize,
            last_fit_len: usize,
        }
        impl Surrogate for CountingSurrogate {
            fn fit(&mut self, inputs: &[Vec<f64>], _targets: &[f64], _rng: &mut Rng64) {
                self.fits += 1;
                self.last_fit_len = inputs.len();
            }
            fn predict(&self, _x: &[f64]) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn thompson_batch(&self, candidates: &[Vec<f64>], _rng: &mut Rng64) -> Vec<f64> {
                vec![0.0; candidates.len()]
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }
        let mut rng = seeded_rng(11);
        let mut bo = BayesOpt::new(
            SearchSpace::unit(2),
            CountingSurrogate {
                fits: 0,
                last_fit_len: 0,
            },
        );
        for i in 0..6 {
            bo.observe(vec![i as f64 / 6.0, 0.5], i as f64);
        }
        bo.fit(&mut rng);
        assert_eq!(bo.surrogate().fits, 1);
        assert_eq!(bo.surrogate().last_fit_len, 6);
        // Shrink the window mid-run: the surrogate is now stale and the
        // next fit re-trains it on exactly the retained 3 points.
        bo = bo.with_window(WindowPolicy::SlidingWindow { capacity: 3 });
        assert_eq!(bo.len(), 3);
        bo.fit(&mut rng);
        assert_eq!(bo.surrogate().fits, 2);
        assert_eq!(bo.surrogate().last_fit_len, 3);
    }

    #[test]
    fn small_window_does_not_relock_the_warmup_phase() {
        use atlas_gp::WindowPolicy;
        // A capacity below initial_random must not leave suggest() doing
        // random search forever: warm-up counts total observations ever
        // recorded, not the retained window.
        let mut rng = seeded_rng(9);
        let mut bo = make_optimizer()
            .with_initial_random(10)
            .with_window(WindowPolicy::SlidingWindow { capacity: 5 });
        for _ in 0..12 {
            let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
            let y = objective(&x);
            bo.observe_and_update(x, y, &mut rng);
        }
        assert!(
            !bo.in_warmup(),
            "warm-up must end after initial_random total observations"
        );
        assert_eq!(bo.len(), 5);
        assert_eq!(bo.surrogate().gp().len(), 5);
    }

    #[test]
    fn window_evicts_oldest_observations_first() {
        let mut bo =
            make_optimizer().with_window(atlas_gp::WindowPolicy::SlidingWindow { capacity: 2 });
        bo.observe(vec![0.1, 0.1], 5.0);
        bo.observe(vec![0.2, 0.2], 2.0);
        bo.observe(vec![0.3, 0.3], 7.0);
        assert_eq!(bo.len(), 2);
        // The y = 5.0 observation was evicted; best() is over the window.
        assert_eq!(bo.best().unwrap().y, 2.0);
        assert_eq!(bo.observations()[0].y, 2.0);
        assert_eq!(bo.observations()[1].y, 7.0);
    }

    #[test]
    fn batched_observe_and_update_matches_per_point() {
        // observe_and_update_batch must leave the optimiser and the GP in
        // exactly the state the per-point chain produces.
        let mut rng_a = seeded_rng(21);
        let mut rng_b = seeded_rng(21);
        let mut a = make_optimizer();
        let mut b = make_optimizer();
        let pts: Vec<(Vec<f64>, f64)> = (0..12)
            .map(|i| {
                let x = vec![i as f64 / 12.0, (i % 4) as f64 / 4.0];
                let y = objective(&x);
                (x, y)
            })
            .collect();
        for chunk in pts.chunks(4) {
            a.observe_and_update_batch(chunk.to_vec(), &mut rng_a);
        }
        for (x, y) in pts {
            b.observe_and_update(x, y, &mut rng_b);
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.observations(), b.observations());
        assert!(!a.in_warmup());
        assert_eq!(
            a.surrogate().predict(&[0.5, 0.5]),
            b.surrogate().predict(&[0.5, 0.5])
        );
        assert_eq!(a.surrogate().gp().kernel(), b.surrogate().gp().kernel());
    }

    #[test]
    fn observe_clamps_out_of_bounds_points() {
        let mut bo = make_optimizer();
        bo.observe(vec![2.0, -1.0], 1.0);
        let o = &bo.observations()[0];
        assert_eq!(o.x, vec![1.0, 0.0]);
    }

    #[test]
    fn best_tracks_the_minimum() {
        let mut bo = make_optimizer();
        bo.observe(vec![0.1, 0.1], 5.0);
        bo.observe(vec![0.2, 0.2], 2.0);
        bo.observe(vec![0.3, 0.3], 7.0);
        assert_eq!(bo.best().unwrap().y, 2.0);
        assert_eq!(bo.iteration(), 0);
    }
}
