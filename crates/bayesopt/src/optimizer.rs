//! The Bayesian-optimisation loop.
//!
//! [`BayesOpt`] keeps the observation history, fits a [`Surrogate`] on
//! demand, and proposes the next query point(s) either by maximising an
//! [`Acquisition`] over a random candidate set or by (parallel) Thompson
//! sampling — the mechanism used by all three Atlas stages. Objective
//! evaluation is left to the caller, which is what allows the Atlas core to
//! run the expensive simulator queries in parallel worker threads.

use crate::acquisition::Acquisition;
use crate::space::SearchSpace;
use crate::surrogate::Surrogate;
use atlas_math::rng::Rng64;

/// One evaluated point of the black-box objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The queried input.
    pub x: Vec<f64>,
    /// The observed objective value (to be minimised).
    pub y: f64,
}

/// A generic Bayesian-optimisation driver (minimisation).
pub struct BayesOpt<S: Surrogate> {
    space: SearchSpace,
    surrogate: S,
    observations: Vec<Observation>,
    candidates_per_suggest: usize,
    initial_random: usize,
    iteration: usize,
}

impl<S: Surrogate> BayesOpt<S> {
    /// Creates an optimiser over `space` using `surrogate`.
    pub fn new(space: SearchSpace, surrogate: S) -> Self {
        Self {
            space,
            surrogate,
            observations: Vec::new(),
            candidates_per_suggest: 2000,
            initial_random: 10,
            iteration: 0,
        }
    }

    /// Sets the number of random candidates scored per suggestion (the
    /// paper samples "tens of thousands"; smaller values are faster and
    /// adequate for low-dimensional spaces).
    pub fn with_candidates(mut self, n: usize) -> Self {
        self.candidates_per_suggest = n.max(2);
        self
    }

    /// Sets the number of purely random warm-up suggestions before the
    /// surrogate is trusted (the paper uses 100 exploration iterations).
    pub fn with_initial_random(mut self, n: usize) -> Self {
        self.initial_random = n;
        self
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The surrogate model (read access).
    pub fn surrogate(&self) -> &S {
        &self.surrogate
    }

    /// All observations so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of completed observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The incumbent best (minimum-objective) observation.
    pub fn best(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .min_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Records an evaluated observation (clamped into the space).
    pub fn observe(&mut self, x: Vec<f64>, y: f64) {
        let x = self.space.clamp(&x);
        self.observations.push(Observation { x, y });
    }

    /// Refits the surrogate on all observations.
    pub fn fit(&mut self, rng: &mut Rng64) {
        let xs: Vec<Vec<f64>> = self.observations.iter().map(|o| o.x.clone()).collect();
        let ys: Vec<f64> = self.observations.iter().map(|o| o.y).collect();
        self.surrogate.fit(&xs, &ys, rng);
    }

    /// Whether the optimiser is still in its random warm-up phase.
    pub fn in_warmup(&self) -> bool {
        self.observations.len() < self.initial_random
    }

    /// Proposes the next query point by maximising `acquisition` over a
    /// fresh random candidate set (random during warm-up). Does **not**
    /// refit the surrogate; call [`BayesOpt::fit`] when new observations
    /// have arrived.
    pub fn suggest(&mut self, acquisition: Acquisition, rng: &mut Rng64) -> Vec<f64> {
        self.iteration += 1;
        if self.in_warmup() {
            return self.space.sample(rng);
        }
        let best = self.best().map(|o| o.y).unwrap_or(0.0);
        let candidates = self.space.sample_n(self.candidates_per_suggest, rng);
        let mut best_candidate = candidates[0].clone();
        let mut best_score = f64::NEG_INFINITY;
        for c in candidates {
            let (mean, std) = self.surrogate.predict(&c);
            let score = acquisition.score(mean, std, best, self.iteration, rng);
            if score > best_score {
                best_score = score;
                best_candidate = c;
            }
        }
        best_candidate
    }

    /// Proposes `q` query points by parallel Thompson sampling: each point
    /// comes from one coherent posterior draw evaluated on its own random
    /// candidate set, optionally combined with an analytic penalty term via
    /// `score`, which maps `(candidate, drawn objective value)` to the
    /// quantity actually minimised (identity on the drawn value reproduces
    /// plain Thompson sampling).
    pub fn suggest_thompson_batch<F>(
        &mut self,
        q: usize,
        rng: &mut Rng64,
        score: F,
    ) -> Vec<Vec<f64>>
    where
        F: Fn(&[f64], f64) -> f64,
    {
        self.iteration += 1;
        let q = q.max(1);
        if self.in_warmup() {
            return self.space.sample_n(q, rng);
        }
        let mut proposals = Vec::with_capacity(q);
        for _ in 0..q {
            let candidates = self.space.sample_n(self.candidates_per_suggest, rng);
            let draws = self.surrogate.thompson_batch(&candidates, rng);
            let mut best_idx = 0;
            let mut best_val = f64::INFINITY;
            for (i, (c, d)) in candidates.iter().zip(draws.iter()).enumerate() {
                let v = score(c, *d);
                if v < best_val {
                    best_val = v;
                    best_idx = i;
                }
            }
            proposals.push(candidates[best_idx].clone());
        }
        proposals
    }

    /// Current iteration counter (number of suggestion rounds issued).
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::GpSurrogate;
    use atlas_math::rng::seeded_rng;

    /// A 2-D bowl with its minimum at (0.7, 0.2).
    fn objective(x: &[f64]) -> f64 {
        (x[0] - 0.7).powi(2) + (x[1] - 0.2).powi(2)
    }

    fn make_optimizer() -> BayesOpt<GpSurrogate> {
        BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
            .with_candidates(500)
            .with_initial_random(8)
    }

    #[test]
    fn warmup_suggestions_are_random_but_in_bounds() {
        let mut rng = seeded_rng(1);
        let mut bo = make_optimizer();
        assert!(bo.in_warmup());
        let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
        assert!(bo.space().contains(&x));
        assert!(bo.is_empty());
    }

    #[test]
    fn gp_ei_converges_near_the_optimum() {
        let mut rng = seeded_rng(2);
        let mut bo = make_optimizer();
        for _ in 0..35 {
            let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
            let y = objective(&x);
            bo.observe(x, y);
            bo.fit(&mut rng);
        }
        let best = bo.best().unwrap();
        assert!(
            best.y < 0.02,
            "best objective {} at {:?} should be near zero",
            best.y,
            best.x
        );
        assert_eq!(bo.len(), 35);
    }

    #[test]
    fn thompson_batch_converges_too() {
        let mut rng = seeded_rng(3);
        let mut bo = make_optimizer();
        for _ in 0..12 {
            let batch = bo.suggest_thompson_batch(4, &mut rng, |_, v| v);
            assert_eq!(batch.len(), 4);
            for x in batch {
                let y = objective(&x);
                bo.observe(x, y);
            }
            bo.fit(&mut rng);
        }
        assert!(bo.best().unwrap().y < 0.05, "best {}", bo.best().unwrap().y);
    }

    #[test]
    fn thompson_penalty_changes_the_selection() {
        let mut rng = seeded_rng(4);
        let mut bo = make_optimizer().with_initial_random(4);
        // Seed with a coarse grid so the surrogate has signal.
        for i in 0..5 {
            for j in 0..5 {
                let x = vec![i as f64 / 4.0, j as f64 / 4.0];
                let y = objective(&x);
                bo.observe(x, y);
            }
        }
        bo.fit(&mut rng);
        // Heavily penalise the first coordinate: proposals should move
        // towards x0 = 0 even though the objective minimum is at 0.7.
        let penalised = bo.suggest_thompson_batch(8, &mut rng, |x, v| v + 5.0 * x[0]);
        let mean_x0: f64 = penalised.iter().map(|x| x[0]).sum::<f64>() / penalised.len() as f64;
        let plain = bo.suggest_thompson_batch(8, &mut rng, |_, v| v);
        let plain_x0: f64 = plain.iter().map(|x| x[0]).sum::<f64>() / plain.len() as f64;
        assert!(
            mean_x0 < plain_x0,
            "penalised mean x0 {mean_x0} should be below plain {plain_x0}"
        );
    }

    #[test]
    fn observe_clamps_out_of_bounds_points() {
        let mut bo = make_optimizer();
        bo.observe(vec![2.0, -1.0], 1.0);
        let o = &bo.observations()[0];
        assert_eq!(o.x, vec![1.0, 0.0]);
    }

    #[test]
    fn best_tracks_the_minimum() {
        let mut bo = make_optimizer();
        bo.observe(vec![0.1, 0.1], 5.0);
        bo.observe(vec![0.2, 0.2], 2.0);
        bo.observe(vec![0.3, 0.3], 7.0);
        assert_eq!(bo.best().unwrap().y, 2.0);
        assert_eq!(bo.iteration(), 0);
    }
}
