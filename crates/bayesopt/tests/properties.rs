//! Property-based tests of the Bayesian-optimisation building blocks.

use atlas_bayesopt::{Acquisition, BayesOpt, GpSurrogate, SearchSpace, Surrogate};
use atlas_math::rng::{seeded_rng, Rng64};
use proptest::prelude::*;

/// A 2-D bowl used by the determinism suites below.
fn bowl(x: &[f64]) -> f64 {
    (x[0] - 0.7).powi(2) + (x[1] - 0.2).powi(2)
}

/// Runs a whole suggest→observe→fit loop with a pinned scoring thread count
/// and returns every suggested point.
fn run_loop(threads: usize, incremental: bool, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded_rng(seed);
    let mut bo = BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
        .with_candidates(400)
        .with_initial_random(6)
        .with_scoring_threads(threads);
    let mut suggested = Vec::new();
    for _ in 0..18 {
        let x = bo.suggest(Acquisition::conservative_default(), &mut rng);
        let y = bowl(&x);
        suggested.push(x.clone());
        if incremental {
            bo.observe_and_update(x, y, &mut rng);
        } else {
            bo.observe(x, y);
            bo.fit(&mut rng);
        }
    }
    suggested
}

/// Same, for the Thompson-sampling batch proposer.
fn run_thompson_loop(threads: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded_rng(seed);
    let mut bo = BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
        .with_candidates(600)
        .with_initial_random(4)
        .with_scoring_threads(threads);
    let mut suggested = Vec::new();
    for _ in 0..6 {
        let batch = bo.suggest_thompson_batch(3, &mut rng, |x, v| v + 0.1 * x[0]);
        for x in batch {
            let y = bowl(&x);
            suggested.push(x.clone());
            bo.observe_and_update(x, y, &mut rng);
        }
    }
    suggested
}

#[test]
fn parallel_candidate_scoring_is_deterministic_across_runs_and_thread_counts() {
    // Byte-for-byte: every suggested point must be identical between a
    // repeat run (same seed) and runs pinned to 1, 3, and 8 scoring
    // threads — the chunked scoring merges in candidate order.
    let reference = run_loop(1, true, 42);
    assert_eq!(run_loop(1, true, 42), reference, "repeat run differs");
    for threads in [3, 8] {
        assert_eq!(run_loop(threads, true, 42), reference, "{threads} threads");
    }
    let thompson_reference = run_thompson_loop(1, 7);
    assert_eq!(run_thompson_loop(1, 7), thompson_reference);
    for threads in [3, 8] {
        assert_eq!(run_thompson_loop(threads, 7), thompson_reference);
    }
}

#[test]
fn incremental_observe_matches_full_refit_loop_exactly() {
    // The GP absorbs observations in O(n²) via observe_one; the resulting
    // suggestions must be bit-for-bit those of the observe-then-full-refit
    // loop (the factor extension is exact and neither path consumes extra
    // RNG draws).
    assert_eq!(run_loop(1, true, 9), run_loop(1, false, 9));
    assert_eq!(run_loop(2, true, 11), run_loop(2, false, 11));
}

#[test]
fn surrogate_without_incremental_path_falls_back_to_full_fit() {
    /// A surrogate that keeps the trait's default `observe_one` (like the
    /// BNN) and counts full refits.
    struct Counting {
        fits: usize,
    }
    impl Surrogate for Counting {
        fn fit(&mut self, _inputs: &[Vec<f64>], _targets: &[f64], _rng: &mut Rng64) {
            self.fits += 1;
        }
        fn predict(&self, _x: &[f64]) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn thompson_batch(&self, candidates: &[Vec<f64>], _rng: &mut Rng64) -> Vec<f64> {
            vec![0.0; candidates.len()]
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }
    let mut rng = seeded_rng(1);
    let mut bo = BayesOpt::new(SearchSpace::unit(2), Counting { fits: 0 });
    bo.observe_and_update(vec![0.1, 0.2], 1.0, &mut rng);
    assert_eq!(bo.surrogate().fits, 0, "default observe_one declines");
    bo.fit(&mut rng);
    assert_eq!(bo.surrogate().fits, 1, "stale surrogate is fully refitted");
    bo.fit(&mut rng);
    assert_eq!(bo.surrogate().fits, 1, "fit without new data is a no-op");
    bo.observe(vec![0.3, 0.4], 2.0);
    bo.fit(&mut rng);
    assert_eq!(bo.surrogate().fits, 2);
}

#[test]
fn fit_less_loop_repairs_a_stale_surrogate_before_suggesting() {
    // A plain observe (no fit) must not freeze the surrogate forever: the
    // subsequent observe_and_update calls leave it stale, and the next
    // suggestion refits it before scoring candidates.
    let mut rng = seeded_rng(3);
    let mut bo = BayesOpt::new(SearchSpace::unit(2), GpSurrogate::new())
        .with_candidates(200)
        .with_initial_random(0);
    bo.observe(vec![0.2, 0.2], bowl(&[0.2, 0.2]));
    for _ in 0..4 {
        let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
        let y = bowl(&x);
        bo.observe_and_update(x, y, &mut rng);
    }
    // All five observations made it into the GP (the suggest-time repair
    // refitted it, after which incremental updates resumed).
    assert_eq!(bo.surrogate().gp().len(), bo.len());
    assert_eq!(bo.len(), 5);
}

fn bounds() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-100.0..100.0f64, 0.01..200.0f64), 1..6).prop_map(|pairs| {
        let lower: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        let upper: Vec<f64> = pairs.iter().map(|(l, w)| l + w).collect();
        (lower, upper)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn samples_and_clamps_stay_in_bounds((lower, upper) in bounds(), seed in 0u64..1000) {
        let space = SearchSpace::new(lower.clone(), upper.clone());
        let mut rng = seeded_rng(seed);
        for x in space.sample_n(20, &mut rng) {
            prop_assert!(space.contains(&x));
            let unit = space.normalize(&x);
            prop_assert!(unit.iter().all(|u| (-1e-9..=1.0 + 1e-9).contains(u)));
            let back = space.denormalize(&unit);
            for (a, b) in back.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
        // Clamping an arbitrary far-away point lands inside the box.
        let wild: Vec<f64> = lower.iter().map(|l| l - 1e6).collect();
        prop_assert!(space.contains(&space.clamp(&wild)));
    }

    #[test]
    fn trust_region_sampling_respects_the_radius(
        (lower, upper) in bounds(),
        radius in 0.05..1.0f64,
        seed in 0u64..1000,
    ) {
        let space = SearchSpace::new(lower, upper);
        let mut rng = seeded_rng(seed);
        let centre = space.sample(&mut rng);
        for _ in 0..10 {
            let x = space.sample_near(&centre, radius, &mut rng);
            prop_assert!(space.contains(&x));
            prop_assert!(space.normalized_distance(&x, &centre) <= radius + 1e-9);
        }
    }

    #[test]
    fn acquisition_scores_are_finite(
        mean in -10.0..10.0f64,
        std in 0.0..5.0f64,
        best in -10.0..10.0f64,
        iteration in 1usize..500,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        for acq in [
            Acquisition::ExpectedImprovement,
            Acquisition::ProbabilityOfImprovement,
            Acquisition::LowerConfidenceBound { beta: 4.0 },
            Acquisition::GpUcb { delta: 0.1, dim: 6 },
            Acquisition::conservative_default(),
        ] {
            let s = acq.score(mean, std, best, iteration, &mut rng);
            prop_assert!(s.is_finite(), "{acq:?} produced {s}");
        }
        // The conservative beta is always within [0, clip].
        let beta = Acquisition::conservative_default().beta(iteration, &mut rng);
        prop_assert!((0.0..=10.0).contains(&beta));
    }

    #[test]
    fn optimiser_best_never_increases_as_observations_arrive(
        ys in prop::collection::vec(-100.0..100.0f64, 1..40),
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let space = SearchSpace::unit(2);
        let mut bo = BayesOpt::new(space.clone(), GpSurrogate::new()).with_initial_random(1000);
        let mut best_so_far = f64::INFINITY;
        for y in ys {
            let x = space.sample(&mut rng);
            bo.observe(x, y);
            best_so_far = best_so_far.min(y);
            prop_assert!((bo.best().unwrap().y - best_so_far).abs() < 1e-12);
        }
    }
}
