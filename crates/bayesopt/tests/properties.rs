//! Property-based tests of the Bayesian-optimisation building blocks.

use atlas_bayesopt::{Acquisition, BayesOpt, GpSurrogate, SearchSpace};
use atlas_math::rng::seeded_rng;
use proptest::prelude::*;

fn bounds() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-100.0..100.0f64, 0.01..200.0f64), 1..6).prop_map(|pairs| {
        let lower: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        let upper: Vec<f64> = pairs.iter().map(|(l, w)| l + w).collect();
        (lower, upper)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn samples_and_clamps_stay_in_bounds((lower, upper) in bounds(), seed in 0u64..1000) {
        let space = SearchSpace::new(lower.clone(), upper.clone());
        let mut rng = seeded_rng(seed);
        for x in space.sample_n(20, &mut rng) {
            prop_assert!(space.contains(&x));
            let unit = space.normalize(&x);
            prop_assert!(unit.iter().all(|u| (-1e-9..=1.0 + 1e-9).contains(u)));
            let back = space.denormalize(&unit);
            for (a, b) in back.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
        // Clamping an arbitrary far-away point lands inside the box.
        let wild: Vec<f64> = lower.iter().map(|l| l - 1e6).collect();
        prop_assert!(space.contains(&space.clamp(&wild)));
    }

    #[test]
    fn trust_region_sampling_respects_the_radius(
        (lower, upper) in bounds(),
        radius in 0.05..1.0f64,
        seed in 0u64..1000,
    ) {
        let space = SearchSpace::new(lower, upper);
        let mut rng = seeded_rng(seed);
        let centre = space.sample(&mut rng);
        for _ in 0..10 {
            let x = space.sample_near(&centre, radius, &mut rng);
            prop_assert!(space.contains(&x));
            prop_assert!(space.normalized_distance(&x, &centre) <= radius + 1e-9);
        }
    }

    #[test]
    fn acquisition_scores_are_finite(
        mean in -10.0..10.0f64,
        std in 0.0..5.0f64,
        best in -10.0..10.0f64,
        iteration in 1usize..500,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        for acq in [
            Acquisition::ExpectedImprovement,
            Acquisition::ProbabilityOfImprovement,
            Acquisition::LowerConfidenceBound { beta: 4.0 },
            Acquisition::GpUcb { delta: 0.1, dim: 6 },
            Acquisition::conservative_default(),
        ] {
            let s = acq.score(mean, std, best, iteration, &mut rng);
            prop_assert!(s.is_finite(), "{acq:?} produced {s}");
        }
        // The conservative beta is always within [0, clip].
        let beta = Acquisition::conservative_default().beta(iteration, &mut rng);
        prop_assert!((0.0..=10.0).contains(&beta));
    }

    #[test]
    fn optimiser_best_never_increases_as_observations_arrive(
        ys in prop::collection::vec(-100.0..100.0f64, 1..40),
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let space = SearchSpace::unit(2);
        let mut bo = BayesOpt::new(space.clone(), GpSurrogate::new()).with_initial_random(1000);
        let mut best_so_far = f64::INFINITY;
        for y in ys {
            let x = space.sample(&mut rng);
            bo.observe(x, y);
            best_so_far = best_so_far.min(y);
            prop_assert!((bo.best().unwrap().y - best_so_far).abs() < 1e-12);
        }
    }
}
