//! Deterministic scoped-thread fan-out helpers.
//!
//! The GP grid sweep, batched prediction and candidate scoring all share
//! the same shape: split a slice into contiguous chunks, process each chunk
//! on its own scoped thread, and reassemble results **in chunk order** so
//! the outcome is bit-for-bit identical for every thread count. These
//! helpers centralise that pattern — and its thresholds, which otherwise
//! drift apart across call sites.

/// How many worker threads to use for `items` work items when each chunk
/// should hold at least `min_chunk` of them. `pinned` overrides the
/// machine-derived default (available parallelism, capped at 8); the result
/// is always at least 1 and never exceeds the number of chunks.
pub fn effective_threads(items: usize, min_chunk: usize, pinned: Option<usize>) -> usize {
    pinned
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
        .max(1)
        .min(items.div_ceil(min_chunk.max(1)).max(1))
}

/// Maps contiguous chunks of `items` over scoped threads and concatenates
/// the per-chunk results in chunk order. `f` receives the chunk's starting
/// index in `items` (for global bookkeeping, e.g. argmin) and the chunk
/// itself, and must be **point-wise deterministic**: the concatenated
/// output must not depend on how `items` was split.
pub fn par_chunks_map<T, R, F>(items: &[T], min_chunk: usize, pinned: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = effective_threads(items.len(), min_chunk, pinned);
    if threads <= 1 {
        return f(0, items);
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(k, c)| scope.spawn(move || f(k * chunk, c)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Runs one closure per (owned) task on its own scoped thread and returns
/// the results in task order — the shard pool: each worker owns its task's
/// state outright (e.g. one fleet shard's slice sessions), so no
/// synchronisation exists beyond the final join. With `parallel = false`
/// or at most one task everything runs inline on the caller's thread,
/// which must be bit-for-bit indistinguishable because `f` is required to
/// be deterministic per task.
pub fn par_map_tasks<T, R, F>(tasks: Vec<T>, parallel: bool, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if !parallel || tasks.len() <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| scope.spawn(move || f(i, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Runs `f` on every item, fanning contiguous chunks over scoped threads.
/// Items are processed independently, so the result is identical for every
/// thread count.
pub fn par_for_each_mut<T, F>(items: &mut [T], min_chunk: usize, pinned: Option<usize>, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = effective_threads(items.len(), min_chunk, pinned);
    if threads <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for c in items.chunks_mut(chunk) {
            scope.spawn(move || c.iter_mut().for_each(f));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_respects_pin_chunking_and_floor() {
        assert_eq!(effective_threads(1000, 1, Some(4)), 4);
        assert_eq!(effective_threads(1000, 1, Some(0)), 1);
        // Never more threads than chunks of min_chunk items.
        assert_eq!(effective_threads(100, 64, Some(8)), 2);
        assert_eq!(effective_threads(10, 64, Some(8)), 1);
        assert_eq!(effective_threads(0, 64, Some(8)), 1);
        assert!(effective_threads(1 << 20, 1, None) >= 1);
    }

    #[test]
    fn par_chunks_map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let reference: Vec<u64> = items.iter().map(|v| v * 3).collect();
        for pinned in [1, 2, 3, 8, 17] {
            let got = par_chunks_map(&items, 1, Some(pinned), |offset, chunk| {
                // The offset must line up with the chunk's position.
                assert_eq!(chunk[0], offset as u64);
                chunk.iter().map(|v| v * 3).collect()
            });
            assert_eq!(got, reference, "pinned = {pinned}");
        }
        assert!(par_chunks_map(&[] as &[u64], 1, Some(4), |_, c| c.to_vec()).is_empty());
    }

    #[test]
    fn par_map_tasks_is_order_preserving_and_inline_equivalent() {
        let tasks: Vec<Vec<u64>> = (0..5)
            .map(|k| (0..10).map(|v| k * 10 + v).collect())
            .collect();
        let sum_with_index = |i: usize, t: Vec<u64>| i as u64 * 1000 + t.iter().sum::<u64>();
        let inline = par_map_tasks(tasks.clone(), false, sum_with_index);
        let threaded = par_map_tasks(tasks.clone(), true, sum_with_index);
        assert_eq!(inline, threaded);
        assert_eq!(inline.len(), 5);
        assert_eq!(inline[0], (0..10).sum::<u64>());
        // Single tasks and empty task lists stay inline and well-formed.
        assert_eq!(par_map_tasks(vec![7u64], true, |_, t| t * 2), vec![14]);
        assert!(par_map_tasks(Vec::<u64>::new(), true, |_, t| t).is_empty());
        // Owned mutable state is handed to exactly one worker each.
        let buffers: Vec<Vec<u64>> = (0..4).map(|_| Vec::new()).collect();
        let filled = par_map_tasks(buffers, true, |i, mut b| {
            b.extend((0..3).map(|v| i as u64 * 3 + v));
            b
        });
        assert_eq!(filled.concat(), (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        for pinned in [1, 3, 8] {
            let mut items: Vec<u64> = (0..100).collect();
            par_for_each_mut(&mut items, 1, Some(pinned), |v| *v += 1);
            assert!(items.iter().enumerate().all(|(i, v)| *v == i as u64 + 1));
        }
    }
}
