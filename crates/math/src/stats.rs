//! Descriptive statistics, histograms, empirical CDFs and the empirical
//! KL-divergence used as the sim-to-real discrepancy metric (Eq. 1 of the
//! paper).

use crate::{MathError, Result};

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance of a slice. Returns 0.0 for fewer than two samples.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Minimum of a slice (`NaN`-free input assumed). Returns `None` if empty.
pub fn min(data: &[f64]) -> Option<f64> {
    data.iter().copied().reduce(f64::min)
}

/// Maximum of a slice. Returns `None` if empty.
pub fn max(data: &[f64]) -> Option<f64> {
    data.iter().copied().reduce(f64::max)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(MathError::EmptyInput("quantile"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MathError::InvalidParameter("quantile q must be in [0, 1]"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Fraction of samples less than or equal to `threshold`.
///
/// This is exactly the QoE definition of the paper:
/// `QoE = Pr(latency <= Y)`.
pub fn fraction_below(data: &[f64], threshold: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|v| **v <= threshold).count() as f64 / data.len() as f64
}

/// Five-number-plus summary of a sample collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample collection.
    pub fn from_samples(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(MathError::EmptyInput("Summary::from_samples"));
        }
        Ok(Self {
            count: data.len(),
            mean: mean(data),
            std_dev: std_dev(data),
            min: min(data).unwrap(),
            p25: quantile(data, 0.25)?,
            median: quantile(data, 0.5)?,
            p75: quantile(data, 0.75)?,
            p95: quantile(data, 0.95)?,
            max: max(data).unwrap(),
        })
    }
}

/// A fixed-range, equal-width histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high]` with `bins` equal-width bins.
    /// Samples outside the range are clamped into the first/last bin, which
    /// is the behaviour we want when comparing latency distributions with
    /// long tails.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self> {
        if bins == 0 || low.partial_cmp(&high) != Some(std::cmp::Ordering::Less) {
            return Err(MathError::InvalidParameter(
                "Histogram requires bins > 0 and low < high",
            ));
        }
        Ok(Self {
            low,
            high,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Builds a histogram directly from samples.
    pub fn from_samples(low: f64, high: f64, bins: usize, samples: &[f64]) -> Result<Self> {
        let mut h = Self::new(low, high, bins)?;
        for &s in samples {
            h.add(s);
        }
        Ok(h)
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.high - self.low) / bins as f64;
        let idx = ((value - self.low) / width).floor();
        let idx = if idx < 0.0 {
            0
        } else if idx as usize >= bins {
            bins - 1
        } else {
            idx as usize
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Normalised probabilities with additive (Laplace) smoothing `alpha`.
    ///
    /// Smoothing keeps the KL-divergence finite when one distribution has
    /// empty bins where the other does not — the standard treatment when
    /// comparing empirical latency distributions.
    pub fn probabilities(&self, alpha: f64) -> Vec<f64> {
        let bins = self.counts.len() as f64;
        let denom = self.total as f64 + alpha * bins;
        self.counts
            .iter()
            .map(|&c| (c as f64 + alpha) / denom)
            .collect()
    }
}

/// KL-divergence `KL(P || Q)` between two discrete probability vectors.
///
/// Both vectors must have the same length and sum to ~1. Terms with
/// `p == 0` contribute zero.
pub fn kl_divergence_discrete(p: &[f64], q: &[f64]) -> Result<f64> {
    if p.len() != q.len() {
        return Err(MathError::ShapeMismatch {
            op: "kl_divergence_discrete",
            lhs: (p.len(), 1),
            rhs: (q.len(), 1),
        });
    }
    if p.is_empty() {
        return Err(MathError::EmptyInput("kl_divergence_discrete"));
    }
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return Ok(f64::INFINITY);
            }
            kl += pi * (pi / qi).ln();
        }
    }
    Ok(kl.max(0.0))
}

/// Options controlling the empirical KL-divergence estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlOptions {
    /// Number of histogram bins over the shared support.
    pub bins: usize,
    /// Additive smoothing applied to each bin.
    pub smoothing: f64,
}

impl Default for KlOptions {
    fn default() -> Self {
        Self {
            bins: 30,
            smoothing: 0.02,
        }
    }
}

/// Empirical KL-divergence `KL(P || Q)` between two sample collections.
///
/// This is the sim-to-real discrepancy metric of the paper (Eq. 1): `P` is
/// the online collection from the real network, `Q` the offline collection
/// from the simulator. Both collections are binned over their shared
/// support with additive smoothing so the result is always finite.
pub fn kl_divergence(p_samples: &[f64], q_samples: &[f64]) -> Result<f64> {
    kl_divergence_with(p_samples, q_samples, KlOptions::default())
}

/// Empirical KL-divergence with explicit binning options.
pub fn kl_divergence_with(p_samples: &[f64], q_samples: &[f64], options: KlOptions) -> Result<f64> {
    if p_samples.is_empty() || q_samples.is_empty() {
        return Err(MathError::EmptyInput("kl_divergence"));
    }
    let low = min(p_samples).unwrap().min(min(q_samples).unwrap());
    let high = max(p_samples).unwrap().max(max(q_samples).unwrap());
    // Degenerate case: all samples identical -> identical distributions.
    let (low, high) = if (high - low).abs() < f64::EPSILON {
        (low - 0.5, high + 0.5)
    } else {
        (low, high)
    };
    let p_hist = Histogram::from_samples(low, high, options.bins, p_samples)?;
    let q_hist = Histogram::from_samples(low, high, options.bins, q_samples)?;
    kl_divergence_discrete(
        &p_hist.probabilities(options.smoothing),
        &q_hist.probabilities(options.smoothing),
    )
}

/// Empirical CDF evaluated over a sorted copy of the samples.
///
/// Returns `(x, F(x))` pairs suitable for plotting a CDF curve (as in
/// Figs. 2 and 9 of the paper).
pub fn empirical_cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in empirical_cdf input"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::seeded_rng;

    #[test]
    fn basic_moments() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((variance(&data) - 4.0).abs() < 1e-12);
        assert!((std_dev(&data) - 2.0).abs() < 1e-12);
        assert_eq!(min(&data), Some(2.0));
        assert_eq!(max(&data), Some(9.0));
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert!(quantile(&[], 0.5).is_err());
        assert!(Summary::from_samples(&[]).is_err());
        assert_eq!(fraction_below(&[], 1.0), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&data, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((quantile(&data, 1.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((median(&[5.0, 1.0, 3.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!(quantile(&data, 1.5).is_err());
    }

    #[test]
    fn fraction_below_matches_qoe_definition() {
        let latencies = [100.0, 200.0, 250.0, 300.0, 400.0];
        assert!((fraction_below(&latencies, 300.0) - 0.8).abs() < 1e-12);
        assert!((fraction_below(&latencies, 99.0) - 0.0).abs() < 1e-12);
        assert!((fraction_below(&latencies, 1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let data: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = Summary::from_samples(&data).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p95);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for v in [-5.0, 0.5, 2.5, 9.9, 42.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // -5.0 clamped + 0.5
        assert_eq!(h.counts()[1], 1); // 2.5
        assert_eq!(h.counts()[4], 2); // 9.9 + 42.0 clamped
        let probs = h.probabilities(0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_parameters() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(5.0, 5.0, 3).is_err());
        assert!(Histogram::new(10.0, 0.0, 3).is_err());
    }

    #[test]
    fn kl_of_identical_samples_is_near_zero() {
        let mut rng = seeded_rng(11);
        let d = Normal::new(100.0, 20.0).unwrap();
        let samples: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let kl = kl_divergence(&samples, &samples).unwrap();
        assert!(kl.abs() < 1e-9, "kl {kl}");
    }

    #[test]
    fn kl_grows_with_distribution_shift() {
        let mut rng = seeded_rng(12);
        let base = Normal::new(100.0, 20.0).unwrap();
        let near = Normal::new(110.0, 20.0).unwrap();
        let far = Normal::new(200.0, 20.0).unwrap();
        let p: Vec<f64> = (0..5000).map(|_| base.sample(&mut rng)).collect();
        let q_near: Vec<f64> = (0..5000).map(|_| near.sample(&mut rng)).collect();
        let q_far: Vec<f64> = (0..5000).map(|_| far.sample(&mut rng)).collect();
        let kl_near = kl_divergence(&p, &q_near).unwrap();
        let kl_far = kl_divergence(&p, &q_far).unwrap();
        assert!(kl_near > 0.0);
        assert!(
            kl_far > kl_near,
            "far {kl_far} should exceed near {kl_near}"
        );
    }

    #[test]
    fn kl_is_asymmetric_but_nonnegative() {
        let p = [1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let q = [1.0, 1.0, 1.0, 1.0, 1.0, 5.0];
        let a = kl_divergence(&p, &q).unwrap();
        let b = kl_divergence(&q, &p).unwrap();
        assert!(a >= 0.0 && b >= 0.0);
        assert!(
            (a - b).abs() > 1e-9,
            "empirical KL should be asymmetric here"
        );
    }

    #[test]
    fn kl_discrete_handles_zero_bins() {
        assert_eq!(
            kl_divergence_discrete(&[0.5, 0.5], &[0.5, 0.0]).unwrap(),
            f64::INFINITY
        );
        let zero_p = kl_divergence_discrete(&[0.0, 1.0], &[0.5, 0.5]).unwrap();
        assert!(zero_p.is_finite());
        assert!(kl_divergence_discrete(&[0.5, 0.5], &[0.3, 0.3, 0.4]).is_err());
    }

    #[test]
    fn kl_with_identical_constant_samples_is_zero() {
        let p = [3.0; 50];
        let q = [3.0; 50];
        assert!(kl_divergence(&p, &q).unwrap().abs() < 1e-9);
        // With different sample counts the smoothed estimate is close to,
        // but not exactly, zero.
        let r = [3.0; 70];
        assert!(kl_divergence(&p, &r).unwrap() < 0.05);
    }

    #[test]
    fn empirical_cdf_is_monotone_and_ends_at_one() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        let cdf = empirical_cdf(&samples);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf[0].0, 1.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
