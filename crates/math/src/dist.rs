//! Probability distributions with explicit, seedable sampling.
//!
//! Implemented from first principles on top of `rand`'s uniform source:
//! Box–Muller for the Normal, Marsaglia–Tsang for the Gamma, exponentiated
//! Normal for the LogNormal. The standard-normal pdf/cdf are also exposed
//! because the expected-improvement and probability-of-improvement
//! acquisition functions need them.

use crate::{MathError, Result};
use rand::Rng;

/// Standard normal probability density function.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz–Stegun 7.1.26 erf approximation (max absolute error
/// ≈ 1.5e-7), which is ample for acquisition-function evaluation.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution. `std_dev` must be non-negative and
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !(std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite()) {
            return Err(MathError::InvalidParameter(
                "Normal requires finite mean and std_dev >= 0",
            ));
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal N(0, 1).
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal_sample(rng)
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        std_normal_pdf((x - self.mean) / self.std_dev) / self.std_dev
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        std_normal_cdf((x - self.mean) / self.std_dev)
    }
}

/// Draws one standard-normal sample via Box–Muller.
pub fn standard_normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would produce -inf.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma distribution parameterised by shape `k` and scale `θ`.
///
/// Used to draw the exploration hyper-parameter `β_t ~ Γ(κ_t, ρ)` of the
/// clipped randomised GP-UCB acquisition function (Sec. 6.2 / Eq. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution. Both parameters must be positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite()) {
            return Err(MathError::InvalidParameter(
                "Gamma requires shape > 0 and scale > 0",
            ));
        }
        Ok(Self { shape, scale })
    }

    /// Distribution mean (`k·θ`).
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Draws one sample using the Marsaglia–Tsang method (with the standard
    /// boosting trick for shape < 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // X ~ Gamma(k+1), U^(1/k) boost.
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal_sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used by the simulator for heavy-tailed compute and loading times in the
/// emulated real network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !(sigma.is_finite() && sigma >= 0.0 && mu.is_finite()) {
            return Err(MathError::InvalidParameter(
                "LogNormal requires finite mu and sigma >= 0",
            ));
        }
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal whose *arithmetic* mean and standard deviation
    /// match the given values. Handy when matching measured statistics
    /// (e.g. "81 ms mean, 35 ms std" compute times from the paper).
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Result<Self> {
        if !(mean > 0.0 && std_dev >= 0.0) {
            return Err(MathError::InvalidParameter(
                "LogNormal::from_mean_std requires mean > 0 and std_dev >= 0",
            ));
        }
        let variance_ratio = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + variance_ratio).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Ok(Self {
            mu,
            sigma: sigma2.sqrt(),
        })
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal_sample(rng)).exp()
    }

    /// Arithmetic mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Continuous uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution; requires `low <= high`.
    pub fn new(low: f64, high: f64) -> Result<Self> {
        if !(low <= high && low.is_finite() && high.is_finite()) {
            return Err(MathError::InvalidParameter(
                "Uniform requires finite low <= high",
            ));
        }
        Ok(Self { low, high })
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.low == self.high {
            return self.low;
        }
        self.low + (self.high - self.low) * rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::stats;

    #[test]
    fn std_normal_cdf_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(std_normal_cdf(8.0) > 0.9999999);
        assert!(std_normal_cdf(-8.0) < 1e-7);
    }

    #[test]
    fn std_normal_pdf_is_symmetric_and_peaks_at_zero() {
        assert!((std_normal_pdf(0.0) - 0.398_942_280).abs() < 1e-6);
        assert!((std_normal_pdf(1.3) - std_normal_pdf(-1.3)).abs() < 1e-12);
        assert!(std_normal_pdf(0.0) > std_normal_pdf(0.5));
    }

    #[test]
    fn normal_sampling_matches_moments() {
        let mut rng = seeded_rng(1);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        assert!((stats::mean(&samples) - 3.0).abs() < 0.05);
        assert!((stats::std_dev(&samples) - 2.0).abs() < 0.05);
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_cdf_pdf_consistency() {
        let d = Normal::new(10.0, 5.0).unwrap();
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-7);
        assert!(d.cdf(25.0) > 0.99);
        assert!(d.pdf(10.0) > d.pdf(20.0));
    }

    #[test]
    fn degenerate_normal_is_a_point_mass() {
        let d = Normal::new(2.0, 0.0).unwrap();
        let mut rng = seeded_rng(3);
        assert_eq!(d.sample(&mut rng), 2.0);
        assert_eq!(d.cdf(1.9), 0.0);
        assert_eq!(d.cdf(2.0), 1.0);
    }

    #[test]
    fn gamma_sampling_matches_mean() {
        let mut rng = seeded_rng(2);
        for &(shape, scale) in &[(0.5, 2.0), (2.0, 3.0), (9.0, 0.5)] {
            let dist = Gamma::new(shape, scale).unwrap();
            let samples: Vec<f64> = (0..30_000).map(|_| dist.sample(&mut rng)).collect();
            let expected = shape * scale;
            assert!(
                (stats::mean(&samples) - expected).abs() < 0.08 * expected.max(1.0),
                "shape {shape} scale {scale}: mean {} vs {}",
                stats::mean(&samples),
                expected
            );
            assert!(samples.iter().all(|v| *v > 0.0));
        }
    }

    #[test]
    fn gamma_rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn lognormal_from_mean_std_roundtrips() {
        let mut rng = seeded_rng(4);
        let dist = LogNormal::from_mean_std(81.0, 35.0).unwrap();
        assert!((dist.mean() - 81.0).abs() < 1e-9);
        let samples: Vec<f64> = (0..40_000).map(|_| dist.sample(&mut rng)).collect();
        assert!((stats::mean(&samples) - 81.0).abs() < 1.5);
        assert!((stats::std_dev(&samples) - 35.0).abs() < 2.5);
        assert!(samples.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(5);
        let dist = Uniform::new(-2.0, 7.0).unwrap();
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..7.0).contains(&v));
        }
        let point = Uniform::new(3.0, 3.0).unwrap();
        assert_eq!(point.sample(&mut rng), 3.0);
        assert!(Uniform::new(2.0, 1.0).is_err());
    }
}
