//! # atlas-math
//!
//! Numerical building blocks for the Atlas network-slicing reproduction:
//!
//! * [`linalg`] — dense matrices, Cholesky factorisation and triangular
//!   solves (used by the Gaussian-process surrogate and the Bayesian neural
//!   network).
//! * [`dist`] — probability distributions (Normal, Gamma, LogNormal,
//!   Uniform) with explicit, seedable sampling.
//! * [`stats`] — descriptive statistics, histograms, empirical CDFs and the
//!   empirical KL-divergence used as the sim-to-real discrepancy metric
//!   (Eq. 1 of the paper).
//! * [`rng`] — deterministic, splittable random-number-generator helpers so
//!   every experiment in the repository is reproducible.
//!
//! The crate is intentionally dependency-light (only `rand`) and contains no
//! `unsafe` code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod linalg;
pub mod rng;
pub mod stats;

pub use dist::{Gamma, LogNormal, Normal, Uniform};
pub use linalg::Matrix;
pub use rng::{derive_seed, seeded_rng, Rng64};
pub use stats::{empirical_cdf, kl_divergence, Histogram, Summary};

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A matrix operation received operands with incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the failed operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// Cholesky factorisation failed because the matrix is not positive
    /// definite (within numerical jitter).
    NotPositiveDefinite,
    /// A routine received an empty sample collection.
    EmptyInput(&'static str),
    /// A distribution was constructed with an invalid parameter.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MathError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            MathError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MathError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Convenience result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, MathError>;
