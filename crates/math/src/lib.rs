//! # atlas-math
//!
//! Numerical building blocks for the Atlas network-slicing reproduction:
//!
//! * [`linalg`] — dense matrices, Cholesky factorisation and triangular
//!   solves (used by the Gaussian-process surrogate and the Bayesian neural
//!   network).
//! * [`dist`] — probability distributions (Normal, Gamma, LogNormal,
//!   Uniform) with explicit, seedable sampling.
//! * [`stats`] — descriptive statistics, histograms, empirical CDFs and the
//!   empirical KL-divergence used as the sim-to-real discrepancy metric
//!   (Eq. 1 of the paper).
//! * [`rng`] — deterministic, splittable random-number-generator helpers so
//!   every experiment in the repository is reproducible.
//!
//! The crate is intentionally dependency-light (only `rand`) and contains no
//! `unsafe` code.
//!
//! ## Quick start
//!
//! ```
//! use atlas_math::{seeded_rng, Matrix, Normal};
//! use atlas_math::stats;
//!
//! // Deterministic sampling from a distribution.
//! let mut rng = seeded_rng(42);
//! let noise = Normal::new(0.0, 1.0).unwrap();
//! let samples: Vec<f64> = (0..1000).map(|_| noise.sample(&mut rng)).collect();
//! assert!(stats::mean(&samples).abs() < 0.2);
//!
//! // Cholesky-based solve of an SPD system.
//! let mut a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
//! a.add_diagonal(0.0);
//! let l = a.cholesky().unwrap();
//! let x = l.cholesky_solve(&[1.0, 2.0]).unwrap();
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod linalg;
pub mod parallel;
pub mod rng;
pub mod stats;

pub use dist::{Gamma, LogNormal, Normal, Uniform};
pub use linalg::Matrix;
pub use rng::{derive_seed, seeded_rng, Rng64};
pub use stats::{empirical_cdf, kl_divergence, Histogram, Summary};

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A matrix operation received operands with incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the failed operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// Cholesky factorisation failed because the matrix is not positive
    /// definite (within numerical jitter).
    NotPositiveDefinite,
    /// A routine received an empty sample collection.
    EmptyInput(&'static str),
    /// A distribution was constructed with an invalid parameter.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MathError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            MathError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MathError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Convenience result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, MathError>;
