//! Dense linear algebra.
//!
//! The Gaussian-process surrogate needs Cholesky factorisations and
//! triangular solves on kernel matrices of a few hundred rows; the Bayesian
//! neural network needs batched matrix multiplication. A simple row-major
//! `Vec<f64>` matrix is more than fast enough for those sizes and keeps the
//! crate free of heavyweight dependencies.

use crate::{MathError, Result};

/// Column-tile width of the multi-right-hand-side triangular solves.
///
/// A multi-RHS sweep touches every factor row once per right-hand-side
/// block; with thousands of columns the block no longer fits in cache and
/// each factor row streams the whole RHS matrix from memory. Solving the
/// columns in tiles of this width keeps the active window (`n × tile`
/// doubles) cache-resident while leaving the per-column arithmetic — and
/// therefore the results, bit for bit — unchanged. Re-swept under the
/// row-blocked forward sweep (the `col_tile_calibration` section of
/// `BENCH_gp.json`): wider tiles amortise the per-tile row-block setup and
/// 256 wins consistently once the update phase is register-blocked, so the
/// earlier conservative 64 moved to 256. Re-run the sweep when the
/// reference hardware changes (see README "Performance").
pub const DEFAULT_COL_TILE: usize = 256;

/// Panel width of the blocked right-looking Cholesky factorisation.
///
/// [`Matrix::cholesky`] / [`PackedCholesky::cholesky`] factor a panel of
/// this many columns with the scalar kernel, then retire the panel's
/// contribution to the whole trailing matrix in one pass whose inner axpy
/// reads both sides from contiguous slices (the panel is transposed into
/// scratch first), so LLVM auto-vectorises it. Blocking is pure
/// scheduling: every element still receives its subtractions in the same
/// increasing-`k` order as the scalar kernel, so the factor is bit-for-bit
/// identical for every width (property-tested). The width is calibrated by
/// the `chol_block` sweep in `BENCH_gp.json`: narrow panels win because the
/// scalar panel factorisation is the non-vectorised fraction of the work,
/// and 16 columns keeps it under a few percent while still giving the
/// trailing update enough depth to amortise the strided panel transpose.
pub const DEFAULT_CHOL_BLOCK: usize = 16;

/// Row-block height of the forward multi-RHS triangular solves.
///
/// The forward sweep solves this many rows as a group per column tile:
/// every already-solved row's RHS tile is loaded once per *block* (then
/// applied to all rows in the block from cache) instead of once per row.
/// Element `(i, c)` still accumulates its subtractions for `j = 0..i` in
/// increasing order — already-solved rows `j < r0` in the hoisted update
/// phase, in-block rows `r0 ≤ j < i` in the small triangular solve that
/// follows — so results are bit-identical to the unblocked sweep for every
/// height (property-tested). The backward sweep is *not* row-blocked:
/// hoisting far rows there would subtract them before nearer ones and
/// break the increasing-`j` summation contract. Calibrated by the
/// `row_block` sweep in `BENCH_gp.json`.
pub const DEFAULT_ROW_BLOCK: usize = 32;

/// A dense, row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a closure over `(row, col)` indices.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// Returns a [`MathError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a column vector (n×1 matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a matrix whose rows are the given slices. All rows must have
    /// the same length; panics otherwise (programming error).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.copy_col_into(c, &mut out);
        out
    }

    /// Copies column `c` into `out` without allocating — the hot-path
    /// counterpart of [`Matrix::col`] for callers that extract columns in a
    /// loop and can reuse one buffer. Panics if `out.len() != rows`
    /// (programming error, like [`Matrix::row`]).
    pub fn copy_col_into(&self, c: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "copy_col_into: length != rows");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.cols + c];
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix multiplication `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MathError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = k * rhs.cols;
                let out_row = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[lhs_row + j];
                }
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Adds `v` to every diagonal element (useful for jitter/noise terms).
    pub fn add_diagonal(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += v;
        }
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(MathError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }

    /// Cholesky factorisation of a symmetric positive-definite matrix.
    ///
    /// Returns the lower-triangular factor `L` such that `L * Lᵀ = self`.
    /// A small amount of jitter may be added by the caller beforehand via
    /// [`Matrix::add_diagonal`] if the matrix is only positive
    /// semi-definite.
    ///
    /// Uses the blocked right-looking kernel with the calibrated
    /// [`DEFAULT_CHOL_BLOCK`] panel width; bit-for-bit identical to
    /// [`Matrix::cholesky_scalar`] (and therefore to the incremental
    /// [`Matrix::cholesky_append_row`] chain) for every width.
    pub fn cholesky(&self) -> Result<Matrix> {
        self.cholesky_blocked(DEFAULT_CHOL_BLOCK)
    }

    /// [`Matrix::cholesky`] with an explicit panel width (a performance
    /// knob only: every width produces bit-identical factors; `block >= n`
    /// degenerates to the scalar kernel).
    pub fn cholesky_blocked(&self, block: usize) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(MathError::ShapeMismatch {
                op: "cholesky",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.data[i * n..i * n + i + 1].copy_from_slice(&self.data[i * n..i * n + i + 1]);
        }
        blocked_cholesky_in_place(&mut l.data, n, block, |i| i * n)?;
        Ok(l)
    }

    /// The reference element-at-a-time Cholesky kernel.
    ///
    /// Kept (unoptimised, single loop nest) as the ground truth the blocked
    /// kernel is property-tested bit-identical against, and as the baseline
    /// the `blocked_kernels` bench section measures speedups from.
    pub fn cholesky_scalar(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(MathError::ShapeMismatch {
                op: "cholesky",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                let mut sum = self.data[i * n + j];
                let (head, tail) = l.data.split_at(i * n);
                let row_j = &head[j * n..j * n + j];
                for (lik, ljk) in tail[..j].iter().zip(row_j.iter()) {
                    sum -= lik * ljk;
                }
                l.data[i * n + j] = sum / l.data[j * n + j];
            }
            let mut sum = self.data[i * n + i];
            for v in &l.data[i * n..i * n + i] {
                sum -= v * v;
            }
            if sum <= 0.0 {
                return Err(MathError::NotPositiveDefinite);
            }
            l.data[i * n + i] = sum.sqrt();
        }
        Ok(l)
    }

    /// Solves `L * x = b` where `self` is lower triangular.
    pub fn solve_lower_triangular(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "solve_lower_triangular",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in 0..n {
            let row = &self.data[i * n..i * n + i];
            let mut sum = b[i];
            for (lij, xj) in row.iter().zip(x.iter()) {
                sum -= lij * xj;
            }
            x[i] = sum / self.data[i * n + i];
        }
        Ok(x)
    }

    /// Solves `Lᵀ * x = b` where `self` is lower triangular.
    pub fn solve_upper_from_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "solve_upper_from_lower",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.data[j * n + i] * xj;
            }
            x[i] = sum / self.data[i * n + i];
        }
        Ok(x)
    }

    /// Solves `A * x = b` given the Cholesky factor `L` of `A` (i.e. `self`
    /// is `L`). Performs the usual forward then backward substitution.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower_triangular(b)?;
        self.solve_upper_from_lower(&y)
    }

    /// Extends a lower-triangular Cholesky factor by one row in place.
    ///
    /// If `self` is the factor `L` of an `n`×`n` SPD matrix `A`, and `row`
    /// holds the bordering `[a₁₂..., a₂₂]` (the `n` cross-covariances
    /// followed by the new diagonal element), the matrix becomes the
    /// `(n+1)`×`(n+1)` factor of `[[A, a₁₂], [a₁₂ᵀ, a₂₂]]` in O(n²) —
    /// bit-for-bit identical to refactorising the extended matrix from
    /// scratch, because the new row performs exactly the operations (in the
    /// same order) that [`Matrix::cholesky`] would.
    ///
    /// Returns [`MathError::NotPositiveDefinite`] (leaving `self` untouched)
    /// if the extended matrix is not positive definite.
    pub fn cholesky_append_row(&mut self, row: &[f64]) -> Result<()> {
        let n = self.rows;
        if self.cols != n || row.len() != n + 1 {
            return Err(MathError::ShapeMismatch {
                op: "cholesky_append_row",
                lhs: self.shape(),
                rhs: (row.len(), 1),
            });
        }
        // l₁₂ solves L·l₁₂ = a₁₂; the new diagonal is √(a₂₂ − |l₁₂|²).
        let l12 = self.solve_lower_triangular(&row[..n])?;
        let mut diag = row[n];
        for v in &l12 {
            diag -= v * v;
        }
        if diag <= 0.0 {
            return Err(MathError::NotPositiveDefinite);
        }
        // Grow the storage in place: shift row i from offset i·n to
        // i·(n+1), top row down so sources are never clobbered, then zero
        // the new trailing column and write the appended row.
        self.data.resize((n + 1) * (n + 1), 0.0);
        for i in (1..n).rev() {
            self.data.copy_within(i * n..(i + 1) * n, i * (n + 1));
        }
        for i in 0..n {
            self.data[i * (n + 1) + n] = 0.0;
        }
        let base = n * (n + 1);
        self.data[base..base + n].copy_from_slice(&l12);
        self.data[base + n] = diag.sqrt();
        self.rows = n + 1;
        self.cols = n + 1;
        Ok(())
    }

    /// Extends a lower-triangular Cholesky factor by a whole batch of
    /// bordering rows in one call — the batched counterpart of
    /// [`Matrix::cholesky_append_row`] that amortises the forward solves:
    /// row `r` (length `n + r + 1`) borders the matrix after the first `r`
    /// rows have been appended, and the shared `n`-prefix of every border
    /// is solved in a single multi-RHS sweep instead of `k` separate ones.
    ///
    /// On success the factor is bit-for-bit identical to the equivalent
    /// sequence of single-row appends (forward substitution is
    /// prefix-stable, and the tail/diagonal arithmetic runs in the same
    /// order). Unlike that sequence, a failure leaves the factor entirely
    /// untouched (all-or-nothing).
    pub fn cholesky_append_rows(&mut self, rows: &[Vec<f64>]) -> Result<()> {
        let n = self.rows;
        if self.cols != n {
            return Err(MathError::ShapeMismatch {
                op: "cholesky_append_rows",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        for (r, row) in rows.iter().enumerate() {
            if row.len() != n + r + 1 {
                return Err(MathError::ShapeMismatch {
                    op: "cholesky_append_rows",
                    lhs: self.shape(),
                    rhs: (row.len(), 1),
                });
            }
        }
        if rows.is_empty() {
            return Ok(());
        }
        let k = rows.len();
        let b = Matrix::from_fn(n, k, |i, r| rows[r][i]);
        let z = self.solve_lower_triangular_multi(&b)?;
        let finished = finish_bordering_rows(&z, rows, n)?;
        // Grow the storage once: shift row i from offset i·n to i·(n+k),
        // bottom row first so sources are never clobbered, zero the new
        // trailing columns, then write the appended rows.
        let nk = n + k;
        self.data.resize(nk * nk, 0.0);
        for i in (1..n).rev() {
            self.data.copy_within(i * n..(i + 1) * n, i * nk);
        }
        for i in 0..n {
            for v in &mut self.data[i * nk + n..(i + 1) * nk] {
                *v = 0.0;
            }
        }
        for (r, x) in finished.iter().enumerate() {
            let base = (n + r) * nk;
            self.data[base..base + x.len()].copy_from_slice(x);
        }
        self.rows = nk;
        self.cols = nk;
        Ok(())
    }

    /// Removes row/column `i` from a lower-triangular Cholesky factor in
    /// place, in O(n²).
    ///
    /// If `self` is the factor `L` of an `n`×`n` SPD matrix `A`, the matrix
    /// becomes the `(n−1)`×`(n−1)` factor of `A` with row `i` and column
    /// `i` deleted. Rows above `i` are untouched; the trailing block is
    /// restored to triangular form by the Givens-style rank-1 *update*
    /// `L₃₃' L₃₃'ᵀ = L₃₃ L₃₃ᵀ + l₃₂ l₃₂ᵀ` (a positive update of an SPD
    /// block, so — unlike a downdate — it can never fail). Deleting the
    /// *last* row is a pure truncation and therefore bit-for-bit exact;
    /// interior deletions agree with a from-scratch factorisation of the
    /// reduced matrix to rounding error (property-tested), not bit level —
    /// callers that need exactness long-term pair this with a periodic
    /// full rebuild.
    pub fn cholesky_delete_row(&mut self, i: usize) -> Result<()> {
        let n = self.rows;
        if self.cols != n || i >= n {
            return Err(MathError::ShapeMismatch {
                op: "cholesky_delete_row",
                lhs: self.shape(),
                rhs: (i, 1),
            });
        }
        // The deleted column's sub-diagonal entries drive the rank-1
        // restoration of the trailing block.
        let v: Vec<f64> = ((i + 1)..n).map(|j| self.data[j * n + i]).collect();
        // Compact rows > i and columns > i in place. Read offsets never
        // precede write offsets (old indices ≥ new indices), so a single
        // forward sweep is safe.
        let m = n - 1;
        let mut w = 0;
        for r in 0..n {
            if r == i {
                continue;
            }
            for c in 0..n {
                if c == i {
                    continue;
                }
                self.data[w] = self.data[r * n + c];
                w += 1;
            }
        }
        self.data.truncate(m * m);
        self.rows = m;
        self.cols = m;
        cholesky_rank_one_update(&mut self.data, m, |r, c| r * m + c, i, v);
        Ok(())
    }

    /// Slides a Cholesky factor one observation forward: drops row/column 0
    /// ([`Matrix::cholesky_delete_row`]) and appends the bordering `row`
    /// ([`Matrix::cholesky_append_row`]) in one O(n²) call — the per-step
    /// cost of a sliding-window Gram/kernel matrix, with no intermediate
    /// reallocation (the append reuses the storage the delete freed).
    ///
    /// `row` borders the *reduced* matrix, so it has length `n` (the `n−1`
    /// retained cross terms plus the new diagonal element). The shape is
    /// validated before the delete, so a [`MathError::ShapeMismatch`]
    /// leaves the factor untouched; a [`MathError::NotPositiveDefinite`]
    /// from the append leaves the factor with the oldest row already
    /// dropped (callers treat a failed shift as a retired factor).
    pub fn cholesky_shift_window(&mut self, row: &[f64]) -> Result<()> {
        let n = self.rows;
        if self.cols != n || n == 0 || row.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "cholesky_shift_window",
                lhs: self.shape(),
                rhs: (row.len(), 1),
            });
        }
        self.cholesky_delete_row(0)?;
        self.cholesky_append_row(row)
    }

    /// Solves `L * X = B` for a whole right-hand-side matrix, where `self`
    /// is lower triangular and `B` is `n`×`m`. Column `j` of the result is
    /// bit-for-bit identical to `solve_lower_triangular` applied to column
    /// `j` of `B`, but the row-major sweep touches each factor row once per
    /// column tile (see [`DEFAULT_COL_TILE`]) so the active RHS window
    /// stays cache-resident.
    pub fn solve_lower_triangular_multi(&self, b: &Matrix) -> Result<Matrix> {
        self.solve_lower_triangular_multi_tiled(b, DEFAULT_COL_TILE)
    }

    /// [`Matrix::solve_lower_triangular_multi`] with an explicit column-tile
    /// width (a performance knob only: every width produces bit-identical
    /// results; `tile >= m` reproduces the untiled single sweep). Rows are
    /// blocked at the calibrated [`DEFAULT_ROW_BLOCK`] height.
    pub fn solve_lower_triangular_multi_tiled(&self, b: &Matrix, tile: usize) -> Result<Matrix> {
        self.solve_lower_triangular_multi_blocked(b, tile, DEFAULT_ROW_BLOCK)
    }

    /// [`Matrix::solve_lower_triangular_multi`] with explicit column-tile
    /// and row-block sizes — the sweep the calibration benches exercise.
    /// Both are performance knobs only; `row_block = 1` reproduces the
    /// plain column-tiled sweep.
    pub fn solve_lower_triangular_multi_blocked(
        &self,
        b: &Matrix,
        col_tile: usize,
        row_block: usize,
    ) -> Result<Matrix> {
        let n = self.rows;
        if self.cols != n || b.rows != n {
            return Err(MathError::ShapeMismatch {
                op: "solve_lower_triangular_multi",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        Ok(solve_triangular_multi_blocked(
            &self.data,
            |i| i * n,
            n,
            b,
            col_tile,
            row_block,
            SweepDir::Forward,
        ))
    }

    /// Solves `Lᵀ * X = B` for a whole right-hand-side matrix, where `self`
    /// is lower triangular and `B` is `n`×`m` (the multi-RHS counterpart of
    /// [`Matrix::solve_upper_from_lower`]), column-tiled like
    /// [`Matrix::solve_lower_triangular_multi`].
    pub fn solve_upper_from_lower_multi(&self, b: &Matrix) -> Result<Matrix> {
        self.solve_upper_from_lower_multi_tiled(b, DEFAULT_COL_TILE)
    }

    /// [`Matrix::solve_upper_from_lower_multi`] with an explicit column-tile
    /// width (bit-identical results for every width). The backward sweep is
    /// not row-blocked — see [`DEFAULT_ROW_BLOCK`] for why.
    pub fn solve_upper_from_lower_multi_tiled(&self, b: &Matrix, tile: usize) -> Result<Matrix> {
        let n = self.rows;
        if self.cols != n || b.rows != n {
            return Err(MathError::ShapeMismatch {
                op: "solve_upper_from_lower_multi",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        Ok(solve_triangular_multi_blocked(
            &self.data,
            |i| i * n,
            n,
            b,
            tile,
            1,
            SweepDir::Backward,
        ))
    }

    /// Solves `A * X = B` for a whole right-hand-side matrix given the
    /// Cholesky factor `L` of `A` (i.e. `self` is `L`).
    pub fn cholesky_solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        let y = self.solve_lower_triangular_multi(b)?;
        self.solve_upper_from_lower_multi(&y)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The lower triangle of the Gram matrix `self · selfᵀ`, in the packed
    /// row-major layout [`PackedCholesky::cholesky_from_packed`] factors in
    /// place (row `i` holds entries `(i, 0..=i)` at offset `i(i+1)/2`).
    ///
    /// This is the `A·Aᵀ` accumulation of the sparse-GP information matrix
    /// `P = K_mn·K_nm + σ²·K̃_mm`: only the `m(m+1)/2` unique entries are
    /// computed (each a length-`n` dot product over contiguous rows), so the
    /// assembly is half the work of a dense `matmul` with the transpose and
    /// feeds the blocked factorisation without repacking.
    pub fn gram_lower_packed(&self) -> Vec<f64> {
        let m = self.rows;
        let mut packed = Vec::with_capacity(m * (m + 1) / 2);
        for i in 0..m {
            let row_i = self.row(i);
            for j in 0..=i {
                packed.push(dot(row_i, self.row(j)));
            }
        }
        packed
    }

    /// Returns the diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }
}

/// Rank-1 *update* of a lower-triangular Cholesky factor held in `data`
/// (layout described by `idx(row, col)`): after the call the factor
/// corresponds to `L Lᵀ + v vᵀ`, where `v` is zero before `start` and
/// `v[k - start]` aligns with factor row `k`. The classic LINPACK Givens
/// sweep — O((n − start)²), and always succeeds because adding `v vᵀ` to
/// an SPD matrix keeps it SPD (every plane-rotation radius is strictly
/// positive).
fn cholesky_rank_one_update(
    data: &mut [f64],
    n: usize,
    idx: impl Fn(usize, usize) -> usize,
    start: usize,
    mut v: Vec<f64>,
) {
    for k in start..n {
        let dk = data[idx(k, k)];
        let vk = v[k - start];
        let r = (dk * dk + vk * vk).sqrt();
        let c = r / dk;
        let s = vk / dk;
        data[idx(k, k)] = r;
        for j in (k + 1)..n {
            let p = idx(j, k);
            let ljk = (data[p] + s * v[j - start]) / c;
            v[j - start] = c * v[j - start] - s * ljk;
            data[p] = ljk;
        }
    }
}

/// Blocked right-looking Cholesky factorisation over triangular storage.
///
/// `data` holds the lower triangle of the input (dense rows at `i·n`,
/// packed rows at `i(i+1)/2` — `row_start` maps a row index to its offset;
/// in both layouts row `i`'s entries `0..=i` are contiguous) and is
/// factored in place. The panel `[c0, c1)` is factored with the scalar
/// kernel, then its contribution is retired from the whole trailing matrix
/// in one pass per panel column `k` (increasing), with the panel
/// transposed into scratch first so the update's inner axpy reads both
/// sides from contiguous slices and auto-vectorises.
///
/// Blocking is pure scheduling: element `(i, j)` still receives its
/// subtractions `l[i][k]·l[j][k]` for `k = 0..j` in increasing order —
/// `k < c0` from earlier panels' trailing updates, `k ≥ c0` from the panel
/// factorisation — followed by the same divide/sqrt, so the factor is
/// bit-for-bit identical to the scalar kernel for every block width, and
/// therefore to the [`Matrix::cholesky_append_row`] bordering chain.
///
/// On [`MathError::NotPositiveDefinite`] the failing diagonal is the same
/// row the scalar kernel would reject; `data` is left partially factored
/// (callers build into scratch and discard on error).
fn blocked_cholesky_in_place(
    data: &mut [f64],
    n: usize,
    block: usize,
    row_start: impl Fn(usize) -> usize,
) -> Result<()> {
    if n == 0 {
        return Ok(());
    }
    let block = block.max(1);
    let mut panelt = vec![0.0; block.min(n) * n];
    let mut c0 = 0;
    while c0 < n {
        let c1 = (c0 + block).min(n);
        // Factor the panel: rows c0.., columns c0..min(i, c1), scalar
        // arithmetic (subtract k = c0..j in order, then divide / sqrt).
        for i in c0..n {
            let ri = row_start(i);
            for j in c0..c1.min(i) {
                let rj = row_start(j);
                let (head, tail) = data.split_at_mut(ri);
                let row_j = &head[rj..rj + j + 1];
                let mut sum = tail[j];
                for (lik, ljk) in tail[c0..j].iter().zip(&row_j[c0..j]) {
                    sum -= lik * ljk;
                }
                tail[j] = sum / row_j[j];
            }
            if i < c1 {
                let row_i = &mut data[ri..ri + i + 1];
                let mut sum = row_i[i];
                for v in &row_i[c0..i] {
                    sum -= v * v;
                }
                if sum <= 0.0 {
                    return Err(MathError::NotPositiveDefinite);
                }
                row_i[i] = sum.sqrt();
            }
        }
        if c1 < n {
            let bw = c1 - c0;
            // Transpose the panel: scratch row k holds column c0+k of the
            // factored panel (l[j][c0+k] for j = c1..n, contiguous over j).
            for k in 0..bw {
                for j in c1..n {
                    panelt[k * n + j] = data[row_start(j) + c0 + k];
                }
            }
            // Trailing update: row i's entries [c1..=i] lose the panel's
            // contributions in increasing-k order; contiguous axpys,
            // unrolled four panel columns per pass so each row tile is
            // read/written once per four columns. The four subtractions
            // per element are separate sequential statements (k
            // increasing), never a reassociated sum — bits unchanged.
            for i in c1..n {
                let ri = row_start(i);
                let mut k = 0;
                while k + 4 <= bw {
                    let l0 = data[ri + c0 + k];
                    let l1 = data[ri + c0 + k + 1];
                    let l2 = data[ri + c0 + k + 2];
                    let l3 = data[ri + c0 + k + 3];
                    let s0 = &panelt[k * n + c1..k * n + i + 1];
                    let s1 = &panelt[(k + 1) * n + c1..(k + 1) * n + i + 1];
                    let s2 = &panelt[(k + 2) * n + c1..(k + 2) * n + i + 1];
                    let s3 = &panelt[(k + 3) * n + c1..(k + 3) * n + i + 1];
                    let dst = &mut data[ri + c1..ri + i + 1];
                    for ((((d, a), b), c), e) in dst.iter_mut().zip(s0).zip(s1).zip(s2).zip(s3) {
                        *d -= l0 * *a;
                        *d -= l1 * *b;
                        *d -= l2 * *c;
                        *d -= l3 * *e;
                    }
                    k += 4;
                }
                while k < bw {
                    let lik = data[ri + c0 + k];
                    let src = &panelt[k * n + c1..k * n + i + 1];
                    let dst = &mut data[ri + c1..ri + i + 1];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d -= lik * *s;
                    }
                    k += 1;
                }
            }
        }
        c0 = c1;
    }
    Ok(())
}

/// Direction of a blocked multi-RHS triangular sweep.
#[derive(Clone, Copy)]
enum SweepDir {
    /// `L · X = B`: rows solved top-down; element `(i, c)` accumulates its
    /// subtractions for `j = 0..i` in increasing order.
    Forward,
    /// `Lᵀ · X = B`: rows solved bottom-up; element `(i, c)` accumulates
    /// its subtractions for `j = i+1..n` in increasing order.
    Backward,
}

/// One engine for every multi-RHS triangular solve (dense and packed,
/// forward and backward). Shapes are validated by the public wrappers.
///
/// Columns are processed in `col_tile`-wide tiles so the active RHS window
/// stays cache-resident. The forward sweep additionally solves rows in
/// `row_block`-tall groups: each already-solved row's RHS tile is loaded
/// once per block (via a transposed coefficient panel, so the per-`j`
/// coefficients read contiguously) and applied to every row of the block
/// from cache. Element `(i, c)`'s subtraction order — solved rows
/// `j < r0` first (increasing), then in-block rows `r0 ≤ j < i` — equals
/// the unblocked `j = 0..i` order, so every `(col_tile, row_block)` pair
/// is bit-identical to the per-column single-RHS solve. The backward sweep
/// keeps the per-row stream (hoisting far rows would reorder the sum) and
/// uses only the column tiling.
fn solve_triangular_multi_blocked(
    ldata: &[f64],
    row_start: impl Fn(usize) -> usize,
    n: usize,
    b: &Matrix,
    col_tile: usize,
    row_block: usize,
    dir: SweepDir,
) -> Matrix {
    let m = b.cols;
    let mut x = b.clone();
    if m == 0 || n == 0 {
        return x;
    }
    let tile = col_tile.max(1);
    match dir {
        SweepDir::Forward => {
            let rb = row_block.max(1).min(n);
            // Transposed coefficient panel for the current row block:
            // entry j·bw + (i − r0) holds l[i][j], so the update phase
            // reads the block's coefficients for a fixed j contiguously.
            let mut panelt = vec![0.0; rb * n];
            let mut r0 = 0;
            while r0 < n {
                let r1 = (r0 + rb).min(n);
                let bw = r1 - r0;
                for (bi, i) in (r0..r1).enumerate() {
                    let ri = row_start(i);
                    for j in 0..r0 {
                        panelt[j * bw + bi] = ldata[ri + j];
                    }
                }
                let mut c0 = 0;
                while c0 < m {
                    let c1 = (c0 + tile).min(m);
                    let (solved, rest) = x.data.split_at_mut(r0 * m);
                    // The block rows' RHS tiles as disjoint mutable slices.
                    let mut tiles: Vec<&mut [f64]> = rest[..bw * m]
                        .chunks_exact_mut(m)
                        .map(|row| &mut row[c0..c1])
                        .collect();
                    // Update phase, unrolled-and-jammed four rows deep:
                    // each solved row's RHS tile is loaded once per four
                    // block rows (four FMAs per load) and the accumulator
                    // tiles stay L1-resident. Element (i, c) still sees
                    // its j = 0..r0 subtractions in increasing order.
                    let mut base = 0;
                    for group in tiles.chunks_mut(4) {
                        let glen = group.len();
                        if let [t0, t1, t2, t3] = group {
                            // Four solved rows per pass: quarters the
                            // accumulator-tile L1 read/write traffic. The
                            // four subtractions per element are separate
                            // sequential statements (j increasing), never
                            // a reassociated sum, so bits are unchanged.
                            let mut j = 0;
                            while j + 4 <= r0 {
                                let xa = &solved[j * m + c0..j * m + c1];
                                let xb = &solved[(j + 1) * m + c0..(j + 1) * m + c1];
                                let xc = &solved[(j + 2) * m + c0..(j + 2) * m + c1];
                                let xd = &solved[(j + 3) * m + c0..(j + 3) * m + c1];
                                let la = &panelt[j * bw + base..j * bw + base + 4];
                                let lb = &panelt[(j + 1) * bw + base..(j + 1) * bw + base + 4];
                                let lc = &panelt[(j + 2) * bw + base..(j + 2) * bw + base + 4];
                                let ld = &panelt[(j + 3) * bw + base..(j + 3) * bw + base + 4];
                                let it = t0
                                    .iter_mut()
                                    .zip(t1.iter_mut())
                                    .zip(t2.iter_mut())
                                    .zip(t3.iter_mut())
                                    .zip(xa)
                                    .zip(xb)
                                    .zip(xc)
                                    .zip(xd);
                                for (((((((x0, x1), x2), x3), va), vb), vc), vd) in it {
                                    *x0 -= la[0] * *va;
                                    *x0 -= lb[0] * *vb;
                                    *x0 -= lc[0] * *vc;
                                    *x0 -= ld[0] * *vd;
                                    *x1 -= la[1] * *va;
                                    *x1 -= lb[1] * *vb;
                                    *x1 -= lc[1] * *vc;
                                    *x1 -= ld[1] * *vd;
                                    *x2 -= la[2] * *va;
                                    *x2 -= lb[2] * *vb;
                                    *x2 -= lc[2] * *vc;
                                    *x2 -= ld[2] * *vd;
                                    *x3 -= la[3] * *va;
                                    *x3 -= lb[3] * *vb;
                                    *x3 -= lc[3] * *vc;
                                    *x3 -= ld[3] * *vd;
                                }
                                j += 4;
                            }
                            while j < r0 {
                                let xj = &solved[j * m + c0..j * m + c1];
                                let lj = &panelt[j * bw + base..j * bw + base + 4];
                                let (l0, l1, l2, l3) = (lj[0], lj[1], lj[2], lj[3]);
                                for ((((x0, x1), x2), x3), xv) in t0
                                    .iter_mut()
                                    .zip(t1.iter_mut())
                                    .zip(t2.iter_mut())
                                    .zip(t3.iter_mut())
                                    .zip(xj)
                                {
                                    *x0 -= l0 * *xv;
                                    *x1 -= l1 * *xv;
                                    *x2 -= l2 * *xv;
                                    *x3 -= l3 * *xv;
                                }
                                j += 1;
                            }
                        } else {
                            for (bi, t) in group.iter_mut().enumerate() {
                                for j in 0..r0 {
                                    let xj = &solved[j * m + c0..j * m + c1];
                                    let lij = panelt[j * bw + base + bi];
                                    for (xi, xv) in t.iter_mut().zip(xj) {
                                        *xi -= lij * *xv;
                                    }
                                }
                            }
                        }
                        base += glen;
                    }
                    // In-block triangular solve (j = r0..i, increasing).
                    for i in r0..r1 {
                        let bi = i - r0;
                        let ri = row_start(i);
                        let (prev, cur) = tiles.split_at_mut(bi);
                        let row_i = &mut *cur[0];
                        for (j, xj) in prev.iter().enumerate() {
                            let lij = ldata[ri + r0 + j];
                            for (xi, xv) in row_i.iter_mut().zip(xj.iter()) {
                                *xi -= lij * *xv;
                            }
                        }
                        let d = ldata[ri + i];
                        for xi in row_i.iter_mut() {
                            *xi /= d;
                        }
                    }
                    c0 = c1;
                }
                r0 = r1;
            }
        }
        SweepDir::Backward => {
            let mut c0 = 0;
            while c0 < m {
                let c1 = (c0 + tile).min(m);
                for i in (0..n).rev() {
                    let (head, solved) = x.data.split_at_mut((i + 1) * m);
                    let row_i = &mut head[i * m + c0..i * m + c1];
                    for (k, xj) in solved.chunks_exact(m).enumerate() {
                        let lji = ldata[row_start(i + 1 + k) + i];
                        for (xi, xv) in row_i.iter_mut().zip(&xj[c0..c1]) {
                            *xi -= lji * *xv;
                        }
                    }
                    let d = ldata[row_start(i) + i];
                    for xi in row_i {
                        *xi /= d;
                    }
                }
                c0 = c1;
            }
        }
    }
    x
}

/// Completes a batch of Cholesky bordering rows given `z`, the multi-RHS
/// forward solve of their shared `n`-prefixes against the existing factor.
/// Returns the finished factor rows (row `r` has length `n + r + 1`,
/// diagonal already square-rooted); the tail components and the diagonal
/// run the same sequential arithmetic as a single-row append, so the batch
/// is bit-identical to appending the rows one at a time.
fn finish_bordering_rows(z: &Matrix, rows: &[Vec<f64>], n: usize) -> Result<Vec<Vec<f64>>> {
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    for (r, row) in rows.iter().enumerate() {
        let mut x = vec![0.0; n + r + 1];
        z.copy_col_into(r, &mut x[..n]);
        for t in n..n + r {
            let lrow = &out[t - n];
            let mut sum = row[t];
            for (ltj, xj) in lrow[..t].iter().zip(x.iter()) {
                sum -= ltj * xj;
            }
            x[t] = sum / lrow[t];
        }
        let mut diag = row[n + r];
        for v in &x[..n + r] {
            diag -= v * v;
        }
        if diag <= 0.0 {
            return Err(MathError::NotPositiveDefinite);
        }
        x[n + r] = diag.sqrt();
        out.push(x);
    }
    Ok(out)
}

/// A lower-triangular Cholesky factor in packed row-major storage: row `i`
/// holds exactly its `i + 1` non-zeros, so the factor of an `n`×`n` matrix
/// uses `n(n+1)/2` doubles and — crucially for the incremental GP hot path —
/// appending a bordering row ([`PackedCholesky::append_row`]) is a pure
/// `Vec` append with no repacking of existing rows.
///
/// All solves perform exactly the operations (in the same order) as their
/// dense [`Matrix`] counterparts, so results are bit-for-bit identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PackedCholesky {
    n: usize,
    data: Vec<f64>,
}

impl PackedCholesky {
    /// An empty (0×0) factor, ready to grow via
    /// [`PackedCholesky::append_row`].
    pub fn empty() -> Self {
        Self::default()
    }

    /// Factorises a symmetric positive-definite matrix into packed form
    /// (the packed counterpart of [`Matrix::cholesky`]), using the blocked
    /// right-looking kernel at [`DEFAULT_CHOL_BLOCK`] — bit-for-bit
    /// identical to growing the factor row by row via
    /// [`PackedCholesky::append_row`], but with the trailing update
    /// vectorised (this is the grid-rebuild hot path in the GP).
    pub fn cholesky(a: &Matrix) -> Result<Self> {
        Self::cholesky_blocked(a, DEFAULT_CHOL_BLOCK)
    }

    /// [`PackedCholesky::cholesky`] with an explicit panel width (a
    /// performance knob only: bit-identical factors for every width).
    pub fn cholesky_blocked(a: &Matrix, block: usize) -> Result<Self> {
        if a.rows != a.cols {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows;
        let mut data = Vec::with_capacity(n * (n + 1) / 2);
        for i in 0..n {
            data.extend_from_slice(&a.data[i * n..i * n + i + 1]);
        }
        blocked_cholesky_in_place(&mut data, n, block, |i| i * (i + 1) / 2)?;
        Ok(Self { n, data })
    }

    /// Factorises a symmetric positive-definite matrix supplied directly as
    /// its packed lower triangle — row `i`'s entries `0..=i` at offset
    /// `i(i+1)/2`, the same layout the factor itself uses — in place,
    /// through the same blocked kernel as
    /// [`PackedCholesky::cholesky_blocked`]. The factor is therefore
    /// bit-for-bit identical to the dense route while the caller never
    /// stages the n² dense matrix (this is the elastic-grid cold-candidate
    /// rebuild path in the GP). The length must be triangular
    /// (`n(n+1)/2` for some `n`); anything else is a shape error.
    pub fn cholesky_from_packed(mut data: Vec<f64>, block: usize) -> Result<Self> {
        let len = data.len();
        // n(n+1)/2 = len → n = (√(8·len+1) − 1)/2; rounded then verified
        // exactly so float error at large sizes cannot mis-shape the factor.
        let n = (((8.0 * len as f64 + 1.0).sqrt() - 1.0) / 2.0).round() as usize;
        if n * (n + 1) / 2 != len {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::cholesky_from_packed",
                lhs: (len, 1),
                rhs: (n * (n + 1) / 2, 1),
            });
        }
        blocked_cholesky_in_place(&mut data, n, block, |i| i * (i + 1) / 2)?;
        Ok(Self { n, data })
    }

    /// Order (number of rows/columns) of the factor.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Row `i` of the factor (its `i + 1` non-zeros).
    fn row(&self, i: usize) -> &[f64] {
        &self.data[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1]
    }

    /// `2·Σ ln Lᵢᵢ` — the log determinant of the factored matrix.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.data[i * (i + 1) / 2 + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Extends the factor by one bordering row `[a₁₂..., a₂₂]` in O(n²)
    /// flops and O(n) fresh storage. Bit-for-bit identical to
    /// refactorising the extended matrix; returns
    /// [`MathError::NotPositiveDefinite`] (leaving the factor untouched) if
    /// the extension is not positive definite.
    pub fn append_row(&mut self, row: &[f64]) -> Result<()> {
        let n = self.n;
        if row.len() != n + 1 {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::append_row",
                lhs: (n, n),
                rhs: (row.len(), 1),
            });
        }
        let l12 = self.solve_lower(&row[..n])?;
        let mut diag = row[n];
        for v in &l12 {
            diag -= v * v;
        }
        if diag <= 0.0 {
            return Err(MathError::NotPositiveDefinite);
        }
        self.data.extend_from_slice(&l12);
        self.data.push(diag.sqrt());
        self.n = n + 1;
        Ok(())
    }

    /// Extends the factor by a whole batch of bordering rows in one call —
    /// the packed counterpart of [`Matrix::cholesky_append_rows`], and the
    /// kernel that amortises a round's worth of GP observations: row `r`
    /// (length `n + r + 1`) borders the matrix after the first `r` rows,
    /// and the shared `n`-prefixes are solved in a single multi-RHS sweep
    /// instead of `rows.len()` separate forward substitutions.
    ///
    /// On success the factor is bit-for-bit identical to the equivalent
    /// sequence of [`PackedCholesky::append_row`] calls; unlike that
    /// sequence, a failure leaves the factor entirely untouched
    /// (all-or-nothing).
    pub fn append_rows(&mut self, rows: &[Vec<f64>]) -> Result<()> {
        let n = self.n;
        for (r, row) in rows.iter().enumerate() {
            if row.len() != n + r + 1 {
                return Err(MathError::ShapeMismatch {
                    op: "PackedCholesky::append_rows",
                    lhs: (n, n),
                    rhs: (row.len(), 1),
                });
            }
        }
        if rows.is_empty() {
            return Ok(());
        }
        let b = Matrix::from_fn(n, rows.len(), |i, r| rows[r][i]);
        let z = self.solve_lower_multi(&b)?;
        let finished = finish_bordering_rows(&z, rows, n)?;
        for x in &finished {
            self.data.extend_from_slice(x);
        }
        self.n = n + rows.len();
        Ok(())
    }

    /// Rank-1 *update* of the packed factor: after the call it factors
    /// `L·Lᵀ + v·vᵀ`, in O(n²/2) via the classic LINPACK Givens sweep (the
    /// same kernel [`PackedCholesky::delete_row`] uses to restore its
    /// trailing block). Adding `v·vᵀ` keeps an SPD matrix SPD, so — unlike
    /// the [`PackedCholesky::rank_one_downdate`] dual — this can never fail
    /// numerically. This is the O(m²) per-observation fold of the sparse-GP
    /// information matrix `P = K_mn·K_nm + σ²·K̃_mm`: absorbing one training
    /// point adds `φ·φᵀ` where `φ` is the new point's inducing-set
    /// cross-covariance column.
    pub fn rank_one_update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.n;
        if v.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::rank_one_update",
                lhs: (n, n),
                rhs: (v.len(), 1),
            });
        }
        cholesky_rank_one_update(&mut self.data, n, |r, c| r * (r + 1) / 2 + c, 0, v.to_vec());
        Ok(())
    }

    /// Rank-1 *downdate* of the packed factor: after the call it factors
    /// `L·Lᵀ − v·vᵀ`, in O(n²/2) via hyperbolic rotations — the eviction
    /// dual of [`PackedCholesky::rank_one_update`] a sliding-window sparse
    /// GP needs when a retained point leaves the window.
    ///
    /// Unlike the update, a downdate can fail: if `L·Lᵀ − v·vᵀ` is not
    /// positive definite the sweep hits a non-positive rotation radius and
    /// returns [`MathError::NotPositiveDefinite`] with the factor left
    /// partially modified — like [`PackedCholesky::shift_window`], callers
    /// treat a failed downdate as a retired factor and rebuild.
    pub fn rank_one_downdate(&mut self, v: &[f64]) -> Result<()> {
        let n = self.n;
        if v.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::rank_one_downdate",
                lhs: (n, n),
                rhs: (v.len(), 1),
            });
        }
        let mut v = v.to_vec();
        for k in 0..n {
            let kk = k * (k + 1) / 2 + k;
            let dk = self.data[kk];
            let vk = v[k];
            let r2 = dk * dk - vk * vk;
            if r2 <= 0.0 {
                return Err(MathError::NotPositiveDefinite);
            }
            let r = r2.sqrt();
            let c = r / dk;
            let s = vk / dk;
            self.data[kk] = r;
            for (j, vj) in v.iter_mut().enumerate().skip(k + 1) {
                let p = j * (j + 1) / 2 + k;
                let ljk = (self.data[p] - s * *vj) / c;
                *vj = c * *vj - s * ljk;
                self.data[p] = ljk;
            }
        }
        Ok(())
    }

    /// Rank-k update: after the call the factor corresponds to
    /// `L·Lᵀ + Σ vᵢ·vᵢᵀ`, applied as the equivalent sequence of
    /// [`PackedCholesky::rank_one_update`] sweeps in row order (and
    /// therefore bit-for-bit identical to that sequence) — the batched
    /// accumulation a round of sparse-GP observations folds in one call.
    /// Shapes are validated up front, so a [`MathError::ShapeMismatch`]
    /// leaves the factor untouched.
    pub fn rank_k_update(&mut self, vs: &[Vec<f64>]) -> Result<()> {
        let n = self.n;
        for v in vs {
            if v.len() != n {
                return Err(MathError::ShapeMismatch {
                    op: "PackedCholesky::rank_k_update",
                    lhs: (n, n),
                    rhs: (v.len(), 1),
                });
            }
        }
        for v in vs {
            cholesky_rank_one_update(&mut self.data, n, |r, c| r * (r + 1) / 2 + c, 0, v.clone());
        }
        Ok(())
    }

    /// Removes row/column `i` from the packed factor in O(n²) — the packed
    /// counterpart of [`Matrix::cholesky_delete_row`], and the dual of
    /// [`PackedCholesky::append_row`] the sliding-window GP hot path needs.
    ///
    /// Rows above `i` are untouched; the trailing block is restored by a
    /// Givens-style rank-1 update (a positive update, so the downdate can
    /// never fail numerically). Deleting the last row is a bit-exact
    /// truncation; interior deletions agree with refactorising the reduced
    /// matrix to rounding error (property-tested).
    pub fn delete_row(&mut self, i: usize) -> Result<()> {
        let n = self.n;
        if i >= n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::delete_row",
                lhs: (n, n),
                rhs: (i, 1),
            });
        }
        let v: Vec<f64> = ((i + 1)..n)
            .map(|j| self.data[j * (j + 1) / 2 + i])
            .collect();
        // Compact the packed storage: rows < i keep their offsets, rows > i
        // shift down one slot and lose their column-i entry. Reads never
        // precede writes, so the sweep is in place.
        let mut w = i * (i + 1) / 2;
        for j in (i + 1)..n {
            let start = j * (j + 1) / 2;
            for c in 0..=j {
                if c != i {
                    self.data[w] = self.data[start + c];
                    w += 1;
                }
            }
        }
        self.data.truncate(w);
        self.n = n - 1;
        cholesky_rank_one_update(&mut self.data, self.n, |r, c| r * (r + 1) / 2 + c, i, v);
        Ok(())
    }

    /// Slides the factor one observation forward: drop row/column 0
    /// ([`PackedCholesky::delete_row`]) and append the bordering `row`
    /// ([`PackedCholesky::append_row`]) in one O(n²) call with no
    /// intermediate reallocation — the steady-state cost of a
    /// sliding-window kernel matrix, independent of how many observations
    /// ever flowed through.
    ///
    /// `row` borders the reduced matrix, so it has length `n` (the `n−1`
    /// retained cross terms plus the new diagonal). Shape errors leave the
    /// factor untouched; a [`MathError::NotPositiveDefinite`] from the
    /// append leaves the oldest row already dropped (callers treat a failed
    /// shift as a retired factor).
    pub fn shift_window(&mut self, row: &[f64]) -> Result<()> {
        let n = self.n;
        if n == 0 || row.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::shift_window",
                lhs: (n, n),
                rhs: (row.len(), 1),
            });
        }
        self.delete_row(0)?;
        self.append_row(row)
    }

    /// Bytes of factor storage currently resident (the packed triangle
    /// only, excluding spare `Vec` capacity) — what a windowed GP reports
    /// as its per-candidate memory plateau.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Solves `L * x = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::solve_lower",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in 0..n {
            let row = self.row(i);
            let mut sum = b[i];
            for (lij, xj) in row[..i].iter().zip(x.iter()) {
                sum -= lij * xj;
            }
            x[i] = sum / row[i];
        }
        Ok(x)
    }

    /// Solves `Lᵀ * x = b` (backward substitution).
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::solve_upper",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.data[j * (j + 1) / 2 + i] * xj;
            }
            x[i] = sum / self.data[i * (i + 1) / 2 + i];
        }
        Ok(x)
    }

    /// Solves `A * x = b` given that `self` factors `A`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Solves `L * X = B` for a whole right-hand-side matrix (`B` is
    /// `n`×`m`); column `j` of the result is bit-for-bit identical to
    /// [`PackedCholesky::solve_lower`] on column `j` of `B`. The sweep is
    /// blocked over column tiles ([`DEFAULT_COL_TILE`]) so the active RHS
    /// window stays cache-resident at stage-sized candidate counts.
    pub fn solve_lower_multi(&self, b: &Matrix) -> Result<Matrix> {
        self.solve_lower_multi_tiled(b, DEFAULT_COL_TILE)
    }

    /// [`PackedCholesky::solve_lower_multi`] with an explicit column-tile
    /// width (a performance knob only: every width produces bit-identical
    /// results; `tile >= m` reproduces the untiled single sweep). Rows are
    /// blocked at the calibrated [`DEFAULT_ROW_BLOCK`] height.
    pub fn solve_lower_multi_tiled(&self, b: &Matrix, tile: usize) -> Result<Matrix> {
        self.solve_lower_multi_blocked(b, tile, DEFAULT_ROW_BLOCK)
    }

    /// [`PackedCholesky::solve_lower_multi`] with explicit column-tile and
    /// row-block sizes — the sweep the calibration benches exercise. Both
    /// are performance knobs only; `row_block = 1` reproduces the plain
    /// column-tiled sweep.
    pub fn solve_lower_multi_blocked(
        &self,
        b: &Matrix,
        col_tile: usize,
        row_block: usize,
    ) -> Result<Matrix> {
        let n = self.n;
        if b.rows != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholesky::solve_lower_multi",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        Ok(solve_triangular_multi_blocked(
            &self.data,
            |i| i * (i + 1) / 2,
            n,
            b,
            col_tile,
            row_block,
            SweepDir::Forward,
        ))
    }

    /// Per-column quadratic forms `bⱼᵀ·A⁻¹·bⱼ` of the factored matrix `A`,
    /// computed as `|L⁻¹bⱼ|²` with **one** multi-RHS forward sweep
    /// ([`PackedCholesky::solve_lower_multi`]) over the whole `n×q`
    /// right-hand side — the GEMM-shaped Woodbury term of sparse-GP batch
    /// prediction, where the predictive variance of `q` candidates needs
    /// `φⱼᵀK̃⁻¹φⱼ` and `φⱼᵀP⁻¹φⱼ` per candidate. Column `j` of the result
    /// is bit-for-bit `|solve_lower(bⱼ)|²`.
    pub fn quad_form_diag(&self, b: &Matrix) -> Result<Vec<f64>> {
        let v = self.solve_lower_multi(b)?;
        let (n, q) = v.shape();
        let mut out = vec![0.0; q];
        for i in 0..n {
            let row = v.row(i);
            for (o, x) in out.iter_mut().zip(row) {
                *o += x * x;
            }
        }
        Ok(out)
    }

    /// Expands the packed factor into a dense lower-triangular [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let row = self.row(i);
            m.data[i * self.n..i * self.n + i + 1].copy_from_slice(row);
        }
        m
    }
}

/// A dense, row-major `f32` matrix — the right-hand-side storage for the
/// opt-in mixed-precision scoring path. Deliberately minimal: only the
/// operations that path needs; all training-time math stays in [`Matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Builds a matrix from a closure over `(row, col)` indices.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// An `f32` shadow of [`PackedCholesky`] for acquisition *ranking* only:
/// the f64 factor remains the source of truth for every observe / refit,
/// and a single-precision copy (half the memory traffic, twice the SIMD
/// lanes) scores candidate batches where only the induced ordering
/// matters. Consumers guard against drift by periodically re-scoring in
/// f64 — see `GpConfig::scoring_precision` in `atlas-gp`.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedCholeskyF32 {
    n: usize,
    data: Vec<f32>,
}

impl PackedCholeskyF32 {
    /// Casts an f64 factor down to its f32 shadow (O(n²/2), no failure
    /// mode: every finite factor entry is representable, with rounding).
    pub fn from_f64(src: &PackedCholesky) -> Self {
        Self {
            n: src.n,
            data: src.data.iter().map(|v| *v as f32).collect(),
        }
    }

    /// Order (number of rows/columns) of the factor.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solves `L · X = B` for a whole f32 right-hand-side matrix, column-
    /// tiled like the f64 sweep ([`DEFAULT_COL_TILE`]).
    pub fn solve_lower_multi(&self, b: &MatrixF32) -> Result<MatrixF32> {
        self.solve_lower_multi_tiled(b, DEFAULT_COL_TILE)
    }

    /// [`PackedCholeskyF32::solve_lower_multi`] with an explicit column-
    /// tile width.
    pub fn solve_lower_multi_tiled(&self, b: &MatrixF32, tile: usize) -> Result<MatrixF32> {
        let n = self.n;
        if b.rows != n {
            return Err(MathError::ShapeMismatch {
                op: "PackedCholeskyF32::solve_lower_multi",
                lhs: (n, n),
                rhs: (b.rows, b.cols),
            });
        }
        let m = b.cols;
        if m == 0 {
            return Ok(b.clone());
        }
        let tile = tile.max(1);
        let mut x = b.clone();
        let mut c0 = 0;
        while c0 < m {
            let c1 = (c0 + tile).min(m);
            for i in 0..n {
                let row = &self.data[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
                let (solved, rest) = x.data.split_at_mut(i * m);
                let row_i = &mut rest[c0..c1];
                for (lij, xj) in row[..i].iter().zip(solved.chunks_exact(m)) {
                    for (xi, xv) in row_i.iter_mut().zip(&xj[c0..c1]) {
                        *xi -= lij * *xv;
                    }
                }
                let d = row[i];
                for xi in row_i.iter_mut() {
                    *xi /= d;
                }
            }
            c0 = c1;
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equally sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
pub fn l2_norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equally sized slices.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// L1 norm of a slice.
pub fn l1_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Rectangular cross-distance assembly: entry `(i, j)` of the returned
/// `a.len()×b.len()` matrix is the Euclidean distance `‖aᵢ − bⱼ‖`. This is
/// the kernel-independent half of a sparse-GP cross-covariance build
/// (`K_mn` between `m` inducing inputs and `n` training points): the
/// distances are assembled once and every hyper-parameter candidate maps
/// its own `eval_dist` over them. Rows of `a` and `b` must share one
/// dimensionality (checked in debug builds, like [`l2_distance`]).
pub fn cross_distances(a: &[Vec<f64>], b: &[Vec<f64>]) -> Matrix {
    Matrix::from_fn(a.len(), b.len(), |i, j| l2_distance(&a[i], &b[j]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_close(c[(0, 0)], 58.0, 1e-12);
        assert_close(c[(0, 1)], 64.0, 1e-12);
        assert_close(c[(1, 0)], 139.0, 1e-12);
        assert_close(c[(1, 1)], 154.0, 1e-12);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MathError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_recomposes() {
        // A symmetric positive-definite matrix.
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap();
        let l = a.cholesky().unwrap();
        let recomposed = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(recomposed[(i, j)], a[(i, j)], 1e-10);
            }
        }
        // Upper triangle of L must stay zero.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.cholesky(), Err(MathError::NotPositiveDefinite));
    }

    #[test]
    fn cholesky_solve_matches_direct_solution() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        // b = A * x_true
        let b: Vec<f64> = (0..3).map(|i| dot(a.row(i), &x_true)).collect();
        let l = a.cholesky().unwrap();
        let x = l.cholesky_solve(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert_close(*got, *want, 1e-10);
        }
    }

    #[test]
    fn triangular_solves() {
        let l = Matrix::from_vec(2, 2, vec![2.0, 0.0, 1.0, 3.0]).unwrap();
        let x = l.solve_lower_triangular(&[4.0, 11.0]).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
        let y = l.solve_upper_from_lower(&[5.0, 3.0]).unwrap();
        // Solves L^T y = b where L^T = [[2,1],[0,3]]
        assert_close(y[1], 1.0, 1e-12);
        assert_close(y[0], 2.0, 1e-12);
    }

    #[test]
    fn cholesky_append_row_matches_full_refactorisation() {
        // A 4×4 SPD matrix; factor the leading 3×3 block, append the last
        // bordering row and compare with factorising the whole matrix.
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 2.0, 0.6, 0.4, 2.0, 3.0, 0.4, 0.2, 0.6, 0.4, 2.0, 0.1, 0.4, 0.2, 0.1, 1.5,
            ],
        )
        .unwrap();
        let full = a.cholesky().unwrap();
        let mut inc = Matrix::from_fn(3, 3, |i, j| a[(i, j)]).cholesky().unwrap();
        inc.cholesky_append_row(&[a[(3, 0)], a[(3, 1)], a[(3, 2)], a[(3, 3)]])
            .unwrap();
        assert_eq!(inc.shape(), (4, 4));
        // The append performs exactly the operations a full refactorisation
        // would, so the factors agree bit-for-bit.
        assert_eq!(inc, full);
    }

    #[test]
    fn cholesky_append_row_from_empty_factor() {
        let mut l = Matrix::zeros(0, 0);
        l.cholesky_append_row(&[9.0]).unwrap();
        assert_eq!(l.shape(), (1, 1));
        assert_close(l[(0, 0)], 3.0, 1e-12);
        l.cholesky_append_row(&[3.0, 5.0]).unwrap();
        // Same as factorising [[9, 3], [3, 5]].
        let full = Matrix::from_vec(2, 2, vec![9.0, 3.0, 3.0, 5.0])
            .unwrap()
            .cholesky()
            .unwrap();
        assert_eq!(l, full);
    }

    #[test]
    fn cholesky_append_row_rejects_indefinite_border_and_bad_shapes() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 2.0]).unwrap();
        let l = a.cholesky().unwrap();
        // A bordering row making the extension indefinite must be rejected
        // and leave the factor untouched.
        let mut attempt = l.clone();
        assert_eq!(
            attempt.cholesky_append_row(&[5.0, 5.0, 1.0]),
            Err(MathError::NotPositiveDefinite)
        );
        assert_eq!(attempt, l);
        assert!(matches!(
            attempt.cholesky_append_row(&[1.0, 2.0]),
            Err(MathError::ShapeMismatch { .. })
        ));
    }

    /// A well-conditioned SPD test matrix with off-diagonal structure.
    fn spd(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d / 2.0).exp() + 0.1 * ((i * 7 + j * 3) % 5) as f64 * f64::from(i == j)
        });
        // Symmetrise and lift the diagonal.
        for i in 0..n {
            for j in 0..i {
                let m = 0.5 * (a[(i, j)] + a[(j, i)]);
                a[(i, j)] = m;
                a[(j, i)] = m;
            }
        }
        a.add_diagonal(1.0);
        a
    }

    fn assert_factors_close(got: &Matrix, want: &Matrix, tol: f64) {
        assert_eq!(got.shape(), want.shape());
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                assert_close(got[(i, j)], want[(i, j)], tol);
            }
        }
    }

    #[test]
    fn cholesky_delete_row_matches_reduced_refactorisation() {
        let n = 6;
        let a = spd(n);
        for del in 0..n {
            let mut inc = a.cholesky().unwrap();
            inc.cholesky_delete_row(del).unwrap();
            let reduced = Matrix::from_fn(n - 1, n - 1, |i, j| {
                a[(i + usize::from(i >= del), j + usize::from(j >= del))]
            });
            let full = reduced.cholesky().unwrap();
            assert_factors_close(&inc, &full, 1e-10);
            // Deleting the last row is a pure truncation: bit-exact.
            if del == n - 1 {
                assert_eq!(inc, full);
            }
        }
    }

    #[test]
    fn cholesky_delete_row_rejects_bad_indices() {
        let mut l = spd(3).cholesky().unwrap();
        assert!(matches!(
            l.cholesky_delete_row(3),
            Err(MathError::ShapeMismatch { .. })
        ));
        let mut rect = Matrix::zeros(2, 3);
        assert!(rect.cholesky_delete_row(0).is_err());
    }

    #[test]
    fn cholesky_shift_window_equals_delete_then_append() {
        let n = 5;
        let a = spd(n + 1);
        let head = Matrix::from_fn(n, n, |i, j| a[(i, j)]);
        let border: Vec<f64> = (1..=n).map(|j| a[(n, j)]).collect();
        let mut shifted = head.cholesky().unwrap();
        shifted.cholesky_shift_window(&border).unwrap();
        let mut manual = head.cholesky().unwrap();
        manual.cholesky_delete_row(0).unwrap();
        manual.cholesky_append_row(&border).unwrap();
        assert_eq!(shifted, manual);
        // And both track the from-scratch factor of the shifted window.
        let window = Matrix::from_fn(n, n, |i, j| a[(i + 1, j + 1)]);
        assert_factors_close(&shifted, &window.cholesky().unwrap(), 1e-10);
        // Shape errors leave the factor untouched.
        let snapshot = shifted.clone();
        assert!(shifted.cholesky_shift_window(&border[..n - 1]).is_err());
        assert_eq!(shifted, snapshot);
    }

    #[test]
    fn packed_delete_row_matches_dense_delete() {
        let n = 6;
        let a = spd(n);
        for del in 0..n {
            let mut packed = PackedCholesky::cholesky(&a).unwrap();
            packed.delete_row(del).unwrap();
            let mut dense = a.cholesky().unwrap();
            dense.cholesky_delete_row(del).unwrap();
            // Same arithmetic on both layouts: identical results.
            assert_eq!(packed.to_matrix(), dense, "delete {del}");
            assert_eq!(packed.order(), n - 1);
        }
        let mut packed = PackedCholesky::cholesky(&a).unwrap();
        assert!(packed.delete_row(n).is_err());
        assert_eq!(packed.order(), n);
    }

    #[test]
    fn packed_shift_window_slides_a_kernel_stream() {
        // Stream a long series of points through a capacity-4 window and
        // check the factor keeps tracking the from-scratch factorisation of
        // the retained window.
        let cap = 4;
        let point = |t: usize| (t as f64 * 0.37).sin() * 2.0;
        let kernel = |a: f64, b: f64| (-(a - b).abs()).exp() + f64::from(a == b) * 0.5;
        let mut window: Vec<f64> = (0..cap).map(point).collect();
        let gram = |w: &[f64]| Matrix::from_fn(w.len(), w.len(), |i, j| kernel(w[i], w[j]));
        let mut factor = PackedCholesky::cholesky(&gram(&window)).unwrap();
        for t in cap..20 {
            let x = point(t);
            window.remove(0);
            window.push(x);
            let border: Vec<f64> = window.iter().map(|w| kernel(*w, x)).collect();
            factor.shift_window(&border).unwrap();
            let full = PackedCholesky::cholesky(&gram(&window)).unwrap();
            assert_eq!(factor.order(), cap);
            assert_factors_close(&factor.to_matrix(), &full.to_matrix(), 1e-9);
            assert_eq!(factor.resident_bytes(), cap * (cap + 1) / 2 * 8);
        }
        // Border of the wrong length is rejected before anything mutates.
        let snapshot = factor.clone();
        assert!(factor.shift_window(&[1.0]).is_err());
        assert_eq!(factor, snapshot);
    }

    #[test]
    fn multi_rhs_solves_match_single_rhs_exactly() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap();
        let l = a.cholesky().unwrap();
        let b = Matrix::from_vec(3, 2, vec![1.0, -3.0, 0.5, 2.0, -1.5, 4.0]).unwrap();
        let fwd = l.solve_lower_triangular_multi(&b).unwrap();
        let bwd = l.solve_upper_from_lower_multi(&b).unwrap();
        let full = l.cholesky_solve_multi(&b).unwrap();
        for c in 0..2 {
            let col = b.col(c);
            assert_eq!(fwd.col(c), l.solve_lower_triangular(&col).unwrap());
            assert_eq!(bwd.col(c), l.solve_upper_from_lower(&col).unwrap());
            assert_eq!(full.col(c), l.cholesky_solve(&col).unwrap());
        }
    }

    #[test]
    fn packed_cholesky_matches_dense_factorisation_and_solves() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 2.0, 0.6, 0.4, 2.0, 3.0, 0.4, 0.2, 0.6, 0.4, 2.0, 0.1, 0.4, 0.2, 0.1, 1.5,
            ],
        )
        .unwrap();
        let dense = a.cholesky().unwrap();
        let packed = PackedCholesky::cholesky(&a).unwrap();
        assert_eq!(packed.order(), 4);
        assert_eq!(packed.to_matrix(), dense);
        let b = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(
            packed.solve_lower(&b).unwrap(),
            dense.solve_lower_triangular(&b).unwrap()
        );
        assert_eq!(
            packed.solve_upper(&b).unwrap(),
            dense.solve_upper_from_lower(&b).unwrap()
        );
        assert_eq!(packed.solve(&b).unwrap(), dense.cholesky_solve(&b).unwrap());
        let log_det_dense: f64 = dense.diagonal().iter().map(|d| d.ln()).sum::<f64>() * 2.0;
        assert_close(packed.log_det(), log_det_dense, 1e-12);
    }

    #[test]
    fn packed_cholesky_append_grows_without_repacking() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 2.0, 0.6, 0.4, 2.0, 3.0, 0.4, 0.2, 0.6, 0.4, 2.0, 0.1, 0.4, 0.2, 0.1, 1.5,
            ],
        )
        .unwrap();
        let mut inc = PackedCholesky::empty();
        for i in 0..4 {
            let border: Vec<f64> = (0..=i).map(|j| a[(i, j)]).collect();
            inc.append_row(&border).unwrap();
        }
        assert_eq!(inc, PackedCholesky::cholesky(&a).unwrap());
        // Indefinite extensions are rejected and leave the factor intact.
        let snapshot = inc.clone();
        assert_eq!(
            inc.append_row(&[10.0, 10.0, 10.0, 10.0, 1.0]),
            Err(MathError::NotPositiveDefinite)
        );
        assert_eq!(inc, snapshot);
        assert!(matches!(
            inc.append_row(&[1.0]),
            Err(MathError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn packed_multi_rhs_solve_matches_per_column() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap();
        let packed = PackedCholesky::cholesky(&a).unwrap();
        let b = Matrix::from_vec(3, 2, vec![1.0, -3.0, 0.5, 2.0, -1.5, 4.0]).unwrap();
        let x = packed.solve_lower_multi(&b).unwrap();
        for c in 0..2 {
            assert_eq!(x.col(c), packed.solve_lower(&b.col(c)).unwrap());
        }
        assert!(packed.solve_lower_multi(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn column_tiled_solves_match_untiled_for_every_tile_width() {
        // A larger SPD system with a wide RHS so several tiles are
        // exercised, including ragged final tiles.
        let n = 12;
        let m = 37;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d / 3.0).exp() + if i == j { 0.5 } else { 0.0 }
        });
        let b = Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 17) % 23) as f64 / 7.0 - 1.5);
        let l = a.cholesky().unwrap();
        let packed = PackedCholesky::cholesky(&a).unwrap();
        // The reference: per-column single-RHS solves (the tiled sweeps
        // must agree bit for bit).
        for tile in [1, 3, 16, 37, 64, 1000] {
            let fwd = l.solve_lower_triangular_multi_tiled(&b, tile).unwrap();
            let bwd = l.solve_upper_from_lower_multi_tiled(&b, tile).unwrap();
            let pfw = packed.solve_lower_multi_tiled(&b, tile).unwrap();
            for c in 0..m {
                let col = b.col(c);
                assert_eq!(
                    fwd.col(c),
                    l.solve_lower_triangular(&col).unwrap(),
                    "fwd tile {tile} col {c}"
                );
                assert_eq!(
                    bwd.col(c),
                    l.solve_upper_from_lower(&col).unwrap(),
                    "bwd tile {tile} col {c}"
                );
                assert_eq!(
                    pfw.col(c),
                    packed.solve_lower(&col).unwrap(),
                    "packed tile {tile} col {c}"
                );
            }
        }
        // Tile width 0 is clamped to 1, not an infinite loop.
        assert_eq!(
            l.solve_lower_triangular_multi_tiled(&b, 0).unwrap(),
            l.solve_lower_triangular_multi(&b).unwrap()
        );
    }

    #[test]
    fn multi_rhs_solve_shape_checks() {
        let l = Matrix::identity(3);
        let bad = Matrix::zeros(2, 2);
        assert!(l.solve_lower_triangular_multi(&bad).is_err());
        assert!(l.solve_upper_from_lower_multi(&bad).is_err());
        let empty = Matrix::zeros(3, 0);
        assert_eq!(l.cholesky_solve_multi(&empty).unwrap().shape(), (3, 0));
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::identity(2);
        let c = a.add(&b).unwrap();
        assert_close(c[(0, 0)], 4.0, 1e-12);
        assert_close(c[(0, 1)], 3.0, 1e-12);
        let d = c.sub(&a).unwrap();
        assert_eq!(d, b);
        let e = b.scale(5.0);
        assert_close(e[(1, 1)], 5.0, 1e-12);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        assert_close(a[(0, 0)], 2.5, 1e-12);
        assert_close(a[(2, 2)], 2.5, 1e-12);
        assert_close(a[(0, 1)], 0.0, 1e-12);
    }

    #[test]
    fn vector_helpers() {
        assert_close(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0, 1e-12);
        assert_close(l2_norm(&[3.0, 4.0]), 5.0, 1e-12);
        assert_close(l2_distance(&[1.0, 1.0], &[4.0, 5.0]), 5.0, 1e-12);
        assert_close(l1_norm(&[-1.0, 2.0, -3.0]), 6.0, 1e-12);
    }

    #[test]
    fn from_rows_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.diagonal(), vec![1.0, 4.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn copy_col_into_matches_col() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut out = [0.0; 3];
        for c in 0..2 {
            m.copy_col_into(c, &mut out);
            assert_eq!(out.to_vec(), m.col(c));
        }
        let empty = Matrix::zeros(0, 3);
        empty.copy_col_into(1, &mut []);
    }

    #[test]
    fn blocked_cholesky_bit_identical_across_edge_shapes() {
        // Every (size, panel width) pairing — n=0/1, block >= n, ragged
        // trailing panels — must reproduce the scalar kernel bit for bit,
        // on the dense and packed layouts alike.
        for n in [0, 1, 2, 5, 12, 33] {
            let a = spd(n);
            let scalar = a.cholesky_scalar().unwrap();
            for block in [1, 2, 3, 8, 16, 64, 1000] {
                let blocked = a.cholesky_blocked(block).unwrap();
                assert_eq!(blocked, scalar, "dense n {n} block {block}");
                let packed = PackedCholesky::cholesky_blocked(&a, block).unwrap();
                assert_eq!(packed.to_matrix(), scalar, "packed n {n} block {block}");
            }
            // Block width 0 is clamped to 1, not an infinite loop.
            assert_eq!(a.cholesky_blocked(0).unwrap(), scalar);
        }
        // The blocked kernel still rejects indefinite input, whichever
        // panel the failure lands in.
        let bad = Matrix::from_fn(8, 8, |i, j| if i == j { -1.0 } else { 0.0 });
        for block in [1, 3, 8, 100] {
            assert_eq!(
                bad.cholesky_blocked(block),
                Err(MathError::NotPositiveDefinite)
            );
        }
    }

    #[test]
    fn row_blocked_forward_solve_matches_per_column_across_shapes() {
        // (col_tile, row_block) combinations covering ragged row blocks
        // (n not a multiple of the block) and ragged column tiles.
        for (n, m) in [(1, 3), (7, 5), (13, 29)] {
            let a = spd(n);
            let l = a.cholesky().unwrap();
            let packed = PackedCholesky::cholesky(&a).unwrap();
            let b = Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 17) % 23) as f64 / 7.0 - 1.5);
            for row_block in [1, 2, 3, 4, 5, 64] {
                for col_tile in [1, 4, 11, 256] {
                    let x = l
                        .solve_lower_triangular_multi_blocked(&b, col_tile, row_block)
                        .unwrap();
                    let xp = packed
                        .solve_lower_multi_blocked(&b, col_tile, row_block)
                        .unwrap();
                    for c in 0..m {
                        let col = b.col(c);
                        let want = l.solve_lower_triangular(&col).unwrap();
                        assert_eq!(x.col(c), want, "dense n {n} rb {row_block} t {col_tile}");
                        assert_eq!(xp.col(c), want, "packed n {n} rb {row_block} t {col_tile}");
                    }
                }
            }
            // Row block 0 is clamped to 1.
            assert_eq!(
                l.solve_lower_triangular_multi_blocked(&b, 16, 0).unwrap(),
                l.solve_lower_triangular_multi(&b).unwrap()
            );
        }
        let empty = Matrix::zeros(4, 0);
        let l = spd(4).cholesky().unwrap();
        assert_eq!(
            l.solve_lower_triangular_multi_blocked(&empty, 8, 8)
                .unwrap()
                .shape(),
            (4, 0)
        );
    }

    #[test]
    fn dense_append_rows_matches_sequential_appends() {
        let n = 7;
        let a = spd(n);
        for split in 0..n {
            let head = Matrix::from_fn(split, split, |i, j| a[(i, j)]);
            let rows: Vec<Vec<f64>> = (split..n)
                .map(|r| (0..=r).map(|j| a[(r, j)]).collect())
                .collect();
            let mut batched = head.cholesky().unwrap();
            batched.cholesky_append_rows(&rows).unwrap();
            let mut seq = head.cholesky().unwrap();
            for row in &rows {
                seq.cholesky_append_row(row).unwrap();
            }
            assert_eq!(batched, seq, "split {split}");
            assert_eq!(batched, a.cholesky().unwrap(), "split {split}");
        }
        // Empty batch is a no-op.
        let mut l = a.cholesky().unwrap();
        l.cholesky_append_rows(&[]).unwrap();
        assert_eq!(l, a.cholesky().unwrap());
        // Mis-shaped rows are rejected before anything mutates.
        let snapshot = l.clone();
        assert!(matches!(
            l.cholesky_append_rows(&[vec![1.0; n]]),
            Err(MathError::ShapeMismatch { .. })
        ));
        assert_eq!(l, snapshot);
        // All-or-nothing: an indefinite extension anywhere in the batch
        // leaves the factor untouched (stronger than the sequential chain,
        // which would keep the rows appended before the failure).
        let good: Vec<f64> = (0..=n).map(|j| if j == n { 10.0 } else { 0.1 }).collect();
        let bad: Vec<f64> = (0..=n + 1)
            .map(|j| if j == n { 100.0 } else { 0.1 })
            .collect();
        assert_eq!(
            l.cholesky_append_rows(&[good, bad]),
            Err(MathError::NotPositiveDefinite)
        );
        assert_eq!(l, snapshot);
    }

    #[test]
    fn packed_append_rows_matches_sequential_appends() {
        let n = 7;
        let a = spd(n);
        for split in 0..n {
            let head = Matrix::from_fn(split, split, |i, j| a[(i, j)]);
            let rows: Vec<Vec<f64>> = (split..n)
                .map(|r| (0..=r).map(|j| a[(r, j)]).collect())
                .collect();
            let mut batched = PackedCholesky::cholesky(&head).unwrap();
            batched.append_rows(&rows).unwrap();
            let mut seq = PackedCholesky::cholesky(&head).unwrap();
            for row in &rows {
                seq.append_row(row).unwrap();
            }
            assert_eq!(batched, seq, "split {split}");
        }
        // Growing from the empty factor in one shot.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..=r).map(|j| a[(r, j)]).collect())
            .collect();
        let mut from_empty = PackedCholesky::empty();
        from_empty.append_rows(&rows).unwrap();
        assert_eq!(from_empty, PackedCholesky::cholesky(&a).unwrap());
        // Empty batch is a no-op; failures are all-or-nothing.
        let snapshot = from_empty.clone();
        from_empty.append_rows(&[]).unwrap();
        assert_eq!(from_empty, snapshot);
        assert!(matches!(
            from_empty.append_rows(&[vec![1.0; 3]]),
            Err(MathError::ShapeMismatch { .. })
        ));
        let bad: Vec<f64> = vec![0.0; n + 1];
        assert_eq!(
            from_empty.append_rows(&[bad]),
            Err(MathError::NotPositiveDefinite)
        );
        assert_eq!(from_empty, snapshot);
    }

    #[test]
    fn rank_one_update_matches_refactorisation() {
        let n = 7;
        let a = spd(n);
        let v: Vec<f64> = (0..n)
            .map(|i| ((i * 5 + 2) % 7) as f64 / 4.0 - 0.6)
            .collect();
        let mut inc = PackedCholesky::cholesky(&a).unwrap();
        inc.rank_one_update(&v).unwrap();
        let mut updated = a.clone();
        for i in 0..n {
            for j in 0..n {
                updated[(i, j)] += v[i] * v[j];
            }
        }
        let full = PackedCholesky::cholesky(&updated).unwrap();
        assert_factors_close(&inc.to_matrix(), &full.to_matrix(), 1e-10);
        // Shape errors leave the factor untouched.
        let snapshot = inc.clone();
        assert!(inc.rank_one_update(&v[..n - 1]).is_err());
        assert_eq!(inc, snapshot);
    }

    #[test]
    fn rank_one_downdate_inverts_the_update() {
        let n = 6;
        let a = spd(n);
        let v: Vec<f64> = (0..n)
            .map(|i| ((i * 3 + 1) % 5) as f64 / 3.0 - 0.5)
            .collect();
        let base = PackedCholesky::cholesky(&a).unwrap();
        let mut roundtrip = base.clone();
        roundtrip.rank_one_update(&v).unwrap();
        roundtrip.rank_one_downdate(&v).unwrap();
        assert_factors_close(&roundtrip.to_matrix(), &base.to_matrix(), 1e-9);
        // And the downdate tracks a refactorisation of A − v·vᵀ when that
        // stays positive definite.
        let small: Vec<f64> = v.iter().map(|x| x * 0.3).collect();
        let mut down = base.clone();
        down.rank_one_downdate(&small).unwrap();
        let mut reduced = a.clone();
        for i in 0..n {
            for j in 0..n {
                reduced[(i, j)] -= small[i] * small[j];
            }
        }
        let full = PackedCholesky::cholesky(&reduced).unwrap();
        assert_factors_close(&down.to_matrix(), &full.to_matrix(), 1e-10);
        // Downdating past positive definiteness is rejected.
        let huge: Vec<f64> = (0..n).map(|_| 100.0).collect();
        assert_eq!(
            base.clone().rank_one_downdate(&huge),
            Err(MathError::NotPositiveDefinite)
        );
        assert!(base.clone().rank_one_downdate(&[1.0]).is_err());
    }

    #[test]
    fn rank_k_update_matches_sequential_rank_one_updates() {
        let n = 5;
        let a = spd(n);
        let vs: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|i| ((i * 7 + r * 11 + 3) % 9) as f64 / 5.0 - 0.8)
                    .collect()
            })
            .collect();
        let mut batched = PackedCholesky::cholesky(&a).unwrap();
        batched.rank_k_update(&vs).unwrap();
        let mut seq = PackedCholesky::cholesky(&a).unwrap();
        for v in &vs {
            seq.rank_one_update(v).unwrap();
        }
        assert_eq!(batched, seq);
        // Shape errors are all-or-nothing (validated before any sweep).
        let snapshot = batched.clone();
        assert!(batched
            .rank_k_update(&[vec![0.0; n], vec![0.0; n - 1]])
            .is_err());
        assert_eq!(batched, snapshot);
    }

    #[test]
    fn gram_lower_packed_matches_matmul_transpose() {
        let a = Matrix::from_fn(4, 9, |i, j| ((i * 13 + j * 7) % 11) as f64 / 3.0 - 1.2);
        let packed = a.gram_lower_packed();
        let dense = a.matmul(&a.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                assert_eq!(packed[i * (i + 1) / 2 + j], dense[(i, j)], "({i},{j})");
            }
        }
        assert_eq!(packed.len(), 4 * 5 / 2);
        // And the packed triangle feeds the blocked factorisation directly.
        let mut gram = packed;
        for i in 0..4 {
            gram[i * (i + 1) / 2 + i] += 1.0;
        }
        let mut dense_reg = dense;
        dense_reg.add_diagonal(1.0);
        assert_eq!(
            PackedCholesky::cholesky_from_packed(gram, 16).unwrap(),
            PackedCholesky::cholesky(&dense_reg).unwrap()
        );
    }

    #[test]
    fn quad_form_diag_matches_per_column_solves() {
        let n = 9;
        let a = spd(n);
        let packed = PackedCholesky::cholesky(&a).unwrap();
        let b = Matrix::from_fn(n, 5, |i, j| ((i * 3 + j * 17) % 13) as f64 / 5.0 - 1.0);
        let diag = packed.quad_form_diag(&b).unwrap();
        for (c, dc) in diag.iter().enumerate() {
            let z = packed.solve_lower(&b.col(c)).unwrap();
            assert_eq!(*dc, z.iter().map(|v| v * v).sum::<f64>(), "col {c}");
        }
        assert!(packed.quad_form_diag(&Matrix::zeros(n + 1, 2)).is_err());
    }

    #[test]
    fn cross_distances_matches_l2_distance() {
        let a: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let b: Vec<Vec<f64>> = (0..4)
            .map(|j| vec![j as f64 * 0.5, 1.0 - j as f64])
            .collect();
        let d = cross_distances(&a, &b);
        assert_eq!(d.shape(), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(d[(i, j)], l2_distance(&a[i], &b[j]));
            }
        }
        assert_eq!(cross_distances(&[], &b).shape(), (0, 4));
    }

    #[test]
    fn f32_shadow_solve_tracks_f64_and_is_tile_invariant() {
        let n = 24;
        let m = 17;
        let a = spd(n);
        let packed = PackedCholesky::cholesky(&a).unwrap();
        let shadow = PackedCholeskyF32::from_f64(&packed);
        assert_eq!(shadow.order(), n);
        let b = Matrix::from_fn(n, m, |i, j| ((i * 13 + j * 5) % 11) as f64 / 3.0 - 1.5);
        let b32 = MatrixF32::from_fn(n, m, |i, j| b[(i, j)] as f32);
        let x64 = packed.solve_lower_multi(&b).unwrap();
        let x32 = shadow.solve_lower_multi(&b32).unwrap();
        for r in 0..n {
            for c in 0..m {
                let want = x64[(r, c)];
                let got = f64::from(x32.get(r, c));
                assert!(
                    (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                    "({r},{c}): f32 {got} vs f64 {want}"
                );
            }
        }
        // The f32 sweep is tile-invariant bit for bit (same per-element
        // order in every tile), and shape-checked like the f64 path.
        for tile in [1, 5, 17, 400] {
            assert_eq!(shadow.solve_lower_multi_tiled(&b32, tile).unwrap(), x32);
        }
        let bad = MatrixF32::from_fn(n + 1, 2, |_, _| 0.0);
        assert!(shadow.solve_lower_multi(&bad).is_err());
    }
}
