//! Dense linear algebra.
//!
//! The Gaussian-process surrogate needs Cholesky factorisations and
//! triangular solves on kernel matrices of a few hundred rows; the Bayesian
//! neural network needs batched matrix multiplication. A simple row-major
//! `Vec<f64>` matrix is more than fast enough for those sizes and keeps the
//! crate free of heavyweight dependencies.

use crate::{MathError, Result};

/// A dense, row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a closure over `(row, col)` indices.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// Returns a [`MathError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a column vector (n×1 matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a matrix whose rows are the given slices. All rows must have
    /// the same length; panics otherwise (programming error).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix multiplication `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MathError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = k * rhs.cols;
                let out_row = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[lhs_row + j];
                }
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Adds `v` to every diagonal element (useful for jitter/noise terms).
    pub fn add_diagonal(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += v;
        }
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(MathError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }

    /// Cholesky factorisation of a symmetric positive-definite matrix.
    ///
    /// Returns the lower-triangular factor `L` such that `L * Lᵀ = self`.
    /// A small amount of jitter may be added by the caller beforehand via
    /// [`Matrix::add_diagonal`] if the matrix is only positive
    /// semi-definite.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(MathError::ShapeMismatch {
                op: "cholesky",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MathError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `L * x = b` where `self` is lower triangular.
    pub fn solve_lower_triangular(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "solve_lower_triangular",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self[(i, j)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        Ok(x)
    }

    /// Solves `Lᵀ * x = b` where `self` is lower triangular.
    pub fn solve_upper_from_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MathError::ShapeMismatch {
                op: "solve_upper_from_lower",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in i + 1..n {
                sum -= self[(j, i)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A * x = b` given the Cholesky factor `L` of `A` (i.e. `self`
    /// is `L`). Performs the usual forward then backward substitution.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower_triangular(b)?;
        self.solve_upper_from_lower(&y)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns the diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equally sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
pub fn l2_norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equally sized slices.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// L1 norm of a slice.
pub fn l1_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_close(c[(0, 0)], 58.0, 1e-12);
        assert_close(c[(0, 1)], 64.0, 1e-12);
        assert_close(c[(1, 0)], 139.0, 1e-12);
        assert_close(c[(1, 1)], 154.0, 1e-12);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MathError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_recomposes() {
        // A symmetric positive-definite matrix.
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap();
        let l = a.cholesky().unwrap();
        let recomposed = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(recomposed[(i, j)], a[(i, j)], 1e-10);
            }
        }
        // Upper triangle of L must stay zero.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.cholesky(), Err(MathError::NotPositiveDefinite));
    }

    #[test]
    fn cholesky_solve_matches_direct_solution() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        // b = A * x_true
        let b: Vec<f64> = (0..3).map(|i| dot(a.row(i), &x_true)).collect();
        let l = a.cholesky().unwrap();
        let x = l.cholesky_solve(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert_close(*got, *want, 1e-10);
        }
    }

    #[test]
    fn triangular_solves() {
        let l = Matrix::from_vec(2, 2, vec![2.0, 0.0, 1.0, 3.0]).unwrap();
        let x = l.solve_lower_triangular(&[4.0, 11.0]).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
        let y = l.solve_upper_from_lower(&[5.0, 3.0]).unwrap();
        // Solves L^T y = b where L^T = [[2,1],[0,3]]
        assert_close(y[1], 1.0, 1e-12);
        assert_close(y[0], 2.0, 1e-12);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::identity(2);
        let c = a.add(&b).unwrap();
        assert_close(c[(0, 0)], 4.0, 1e-12);
        assert_close(c[(0, 1)], 3.0, 1e-12);
        let d = c.sub(&a).unwrap();
        assert_eq!(d, b);
        let e = b.scale(5.0);
        assert_close(e[(1, 1)], 5.0, 1e-12);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        assert_close(a[(0, 0)], 2.5, 1e-12);
        assert_close(a[(2, 2)], 2.5, 1e-12);
        assert_close(a[(0, 1)], 0.0, 1e-12);
    }

    #[test]
    fn vector_helpers() {
        assert_close(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0, 1e-12);
        assert_close(l2_norm(&[3.0, 4.0]), 5.0, 1e-12);
        assert_close(l2_distance(&[1.0, 1.0], &[4.0, 5.0]), 5.0, 1e-12);
        assert_close(l1_norm(&[-1.0, 2.0, -3.0]), 6.0, 1e-12);
    }

    #[test]
    fn from_rows_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.diagonal(), vec![1.0, 4.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }
}
