//! Deterministic random-number-generator helpers.
//!
//! Every stochastic component of the repository (simulator, surrogate
//! models, acquisition functions, baselines) takes an explicit `u64` seed so
//! that experiments are reproducible run-to-run. This module centralises the
//! construction of RNGs and provides a cheap way to derive independent
//! sub-streams from a parent seed (e.g. one stream per parallel Thompson
//! query).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used throughout the workspace.
pub type Rng64 = StdRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> Rng64 {
    StdRng::seed_from_u64(seed)
}

/// Derives a new seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finaliser so that nearby `(seed, stream)` pairs map
/// to well-separated outputs. This lets callers spawn independent RNG
/// streams (one per parallel query, per user, per experiment repetition)
/// without correlated sequences.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let base = 7;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(seen.insert(derive_seed(base, stream)));
        }
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(123, 4), derive_seed(123, 4));
        assert_ne!(derive_seed(123, 4), derive_seed(123, 5));
        assert_ne!(derive_seed(123, 4), derive_seed(124, 4));
    }
}
