//! Property-based tests for atlas-math invariants.

use atlas_math::dist::{Gamma, LogNormal, Normal};
use atlas_math::linalg::{l2_distance, Matrix};
use atlas_math::rng::seeded_rng;
use atlas_math::stats;
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_recomposes_random_spd(values in prop::collection::vec(-2.0..2.0f64, 16)) {
        // Build A = B Bᵀ + I which is always SPD.
        let b = Matrix::from_vec(4, 4, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        let l = a.cholesky().expect("SPD matrix must factor");
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_solve_solves(values in prop::collection::vec(-2.0..2.0f64, 16),
                             rhs in finite_vec(4)) {
        let b = Matrix::from_vec(4, 4, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        let l = a.cholesky().unwrap();
        let x = l.cholesky_solve(&rhs).unwrap();
        // Verify A x ≈ rhs.
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert!((got - rhs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_is_associative_on_small_matrices(
        a_vals in prop::collection::vec(-5.0..5.0f64, 6),
        b_vals in prop::collection::vec(-5.0..5.0f64, 6),
        c_vals in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        let a = Matrix::from_vec(2, 3, a_vals).unwrap();
        let b = Matrix::from_vec(3, 2, b_vals).unwrap();
        let c = Matrix::from_vec(2, 2, c_vals).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_append_row_equals_full_refactorisation(
        values in prop::collection::vec(-2.0..2.0f64, 25)
    ) {
        // Build a random 5×5 SPD matrix; every leading principal block of an
        // SPD matrix is SPD, so both the 4×4 prefix factorisation and the
        // bordered extension must succeed.
        let b = Matrix::from_vec(5, 5, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        let full = a.cholesky().expect("SPD matrix must factor");
        let mut inc = Matrix::from_fn(4, 4, |i, j| a[(i, j)])
            .cholesky()
            .expect("leading block must factor");
        let border: Vec<f64> = (0..5).map(|j| a[(4, j)]).collect();
        inc.cholesky_append_row(&border).expect("bordered extension is SPD");
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((inc[(i, j)] - full[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn incremental_cholesky_chain_tracks_full_factorisation(
        values in prop::collection::vec(-2.0..2.0f64, 36)
    ) {
        // Grow a factor one bordering row at a time from 1×1 to 6×6 and
        // compare against factorising each leading block from scratch.
        let b = Matrix::from_vec(6, 6, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        let mut inc = Matrix::zeros(0, 0);
        for n in 0..6 {
            let border: Vec<f64> = (0..=n).map(|j| a[(n, j)]).collect();
            inc.cholesky_append_row(&border).expect("leading blocks are SPD");
            let full = Matrix::from_fn(n + 1, n + 1, |i, j| a[(i, j)])
                .cholesky()
                .unwrap();
            for i in 0..=n {
                for j in 0..=n {
                    prop_assert!((inc[(i, j)] - full[(i, j)]).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn cholesky_delete_row_equals_reduced_refactorisation(
        values in prop::collection::vec(-2.0..2.0f64, 36),
        del in 0usize..6,
    ) {
        // Build a random 6×6 SPD matrix, factor it, delete one row/column
        // of the factor and compare with factorising the reduced matrix
        // from scratch — for every deletion index, dense and packed alike.
        let b = Matrix::from_vec(6, 6, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        let mut dense = a.cholesky().expect("SPD matrix must factor");
        dense.cholesky_delete_row(del).expect("valid index");
        let mut packed = atlas_math::linalg::PackedCholesky::cholesky(&a).unwrap();
        packed.delete_row(del).expect("valid index");
        let reduced = Matrix::from_fn(5, 5, |i, j| {
            a[(i + usize::from(i >= del), j + usize::from(j >= del))]
        });
        let full = reduced.cholesky().expect("reduced SPD matrix must factor");
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((dense[(i, j)] - full[(i, j)]).abs() < 1e-8,
                    "dense ({i},{j}) {} vs {}", dense[(i, j)], full[(i, j)]);
            }
        }
        // The packed layout performs the same arithmetic as the dense one.
        prop_assert_eq!(packed.to_matrix(), dense);
    }

    #[test]
    fn cholesky_shift_window_tracks_the_sliding_gram_matrix(
        values in prop::collection::vec(-2.0..2.0f64, 49),
        border in prop::collection::vec(-0.4..0.4f64, 6),
    ) {
        // Factor the leading 6×6 block of a random 7×7 SPD matrix, then
        // shift the window by one (drop oldest, append the last bordering
        // row) and compare with factorising the trailing 6×6 block.
        let b = Matrix::from_vec(7, 7, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        // Overwrite the last border with bounded values so the shifted
        // window stays comfortably positive definite.
        for (j, v) in border.iter().enumerate() {
            a[(6, j + 1)] = *v;
            a[(j + 1, 6)] = *v;
        }
        a[(6, 6)] = 2.0;
        let head = Matrix::from_fn(6, 6, |i, j| a[(i, j)]);
        let mut shifted = atlas_math::linalg::PackedCholesky::cholesky(&head).unwrap();
        let row: Vec<f64> = (1..=6).map(|j| a[(6, j)]).collect();
        shifted.shift_window(&row).expect("shifted window stays SPD");
        let tail = Matrix::from_fn(6, 6, |i, j| a[(i + 1, j + 1)]);
        let full = atlas_math::linalg::PackedCholesky::cholesky(&tail).unwrap();
        let (got, want) = (shifted.to_matrix(), full.to_matrix());
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn multi_rhs_triangular_solves_match_per_column_solves(
        values in prop::collection::vec(-2.0..2.0f64, 16),
        rhs in prop::collection::vec(-5.0..5.0f64, 12),
    ) {
        let m = Matrix::from_vec(4, 4, values).unwrap();
        let mut a = m.matmul(&m.transpose()).unwrap();
        a.add_diagonal(1.0);
        let l = a.cholesky().unwrap();
        let b = Matrix::from_vec(4, 3, rhs).unwrap();
        let x = l.cholesky_solve_multi(&b).unwrap();
        for c in 0..3 {
            // Bit-for-bit: the multi-RHS sweep performs the same operations
            // in the same order as the single-RHS solves.
            prop_assert_eq!(x.col(c), l.cholesky_solve(&b.col(c)).unwrap());
        }
    }

    #[test]
    fn blocked_cholesky_is_bit_identical_to_scalar_for_random_sizes_and_blocks(
        values in prop::collection::vec(-2.0..2.0f64, 196),
        n in 1usize..14,
        block in 1usize..20,
    ) {
        // The blocked right-looking kernel is pure scheduling: for every
        // (matrix size, panel width) pair — including block >= n and ragged
        // trailing panels — the factor must equal the scalar kernel's bit
        // for bit, on the dense and the packed layout alike.
        let b = Matrix::from_vec(14, 14, values).unwrap();
        let mut big = b.matmul(&b.transpose()).unwrap();
        big.add_diagonal(1.0);
        let a = Matrix::from_fn(n, n, |i, j| big[(i, j)]);
        let scalar = a.cholesky_scalar().expect("SPD matrix must factor");
        let blocked = a.cholesky_blocked(block).expect("SPD matrix must factor");
        prop_assert_eq!(&blocked, &scalar, "dense blocked != scalar (n {}, block {})", n, block);
        let packed = atlas_math::linalg::PackedCholesky::cholesky_blocked(&a, block).unwrap();
        prop_assert_eq!(packed.to_matrix(), scalar);
    }

    #[test]
    fn cholesky_from_packed_is_bit_identical_to_the_dense_route(
        values in prop::collection::vec(-2.0..2.0f64, 196),
        n in 1usize..14,
        block in 1usize..20,
    ) {
        // Feeding the packed lower triangle directly (the elastic-grid
        // cold-rebuild path) must reproduce the dense-staged factorisation
        // bit for bit for every size and panel width.
        let b = Matrix::from_vec(14, 14, values).unwrap();
        let mut big = b.matmul(&b.transpose()).unwrap();
        big.add_diagonal(1.0);
        let a = Matrix::from_fn(n, n, |i, j| big[(i, j)]);
        let mut tri = Vec::with_capacity(n * (n + 1) / 2);
        for i in 0..n {
            for j in 0..=i {
                tri.push(a[(i, j)]);
            }
        }
        let from_packed =
            atlas_math::linalg::PackedCholesky::cholesky_from_packed(tri, block).unwrap();
        let dense = atlas_math::linalg::PackedCholesky::cholesky_blocked(&a, block).unwrap();
        prop_assert_eq!(&from_packed, &dense);
        // Non-triangular lengths are rejected, not mis-shaped (consecutive
        // triangular numbers differ by at least 2, so len + 1 never is one).
        let bad = vec![1.0; n * (n + 1) / 2 + 1];
        prop_assert!(
            atlas_math::linalg::PackedCholesky::cholesky_from_packed(bad, block).is_err()
        );
    }

    #[test]
    fn blocked_forward_solve_is_bit_identical_for_random_tiles_and_blocks(
        values in prop::collection::vec(-2.0..2.0f64, 100),
        rhs in prop::collection::vec(-5.0..5.0f64, 90),
        col_tile in 1usize..12,
        row_block in 1usize..12,
    ) {
        // Row-blocking and column-tiling of the forward sweep are
        // performance knobs only: every (col_tile, row_block) pair must
        // reproduce the per-column single-RHS solve exactly.
        let m = Matrix::from_vec(10, 10, values).unwrap();
        let mut a = m.matmul(&m.transpose()).unwrap();
        a.add_diagonal(1.0);
        let l = a.cholesky().unwrap();
        let packed = atlas_math::linalg::PackedCholesky::cholesky(&a).unwrap();
        let b = Matrix::from_vec(10, 9, rhs).unwrap();
        let x = l.solve_lower_triangular_multi_blocked(&b, col_tile, row_block).unwrap();
        let xp = packed.solve_lower_multi_blocked(&b, col_tile, row_block).unwrap();
        for c in 0..9 {
            let col = b.col(c);
            prop_assert_eq!(x.col(c), l.solve_lower_triangular(&col).unwrap());
            prop_assert_eq!(xp.col(c), packed.solve_lower(&col).unwrap());
        }
    }

    #[test]
    fn batched_append_rows_is_bit_identical_to_sequential_appends(
        values in prop::collection::vec(-2.0..2.0f64, 81),
        split in 0usize..9,
    ) {
        // Factor a leading block, then append the remaining rows in one
        // batched call and compare with appending them one at a time.
        let b = Matrix::from_vec(9, 9, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        let head = Matrix::from_fn(split, split, |i, j| a[(i, j)]);
        let rows: Vec<Vec<f64>> = (split..9)
            .map(|r| (0..=r).map(|j| a[(r, j)]).collect())
            .collect();

        let mut batched = atlas_math::linalg::PackedCholesky::cholesky(&head).unwrap();
        batched.append_rows(&rows).expect("SPD extension must append");
        let mut seq = atlas_math::linalg::PackedCholesky::cholesky(&head).unwrap();
        for row in &rows {
            seq.append_row(row).unwrap();
        }
        prop_assert_eq!(&batched, &seq);

        let mut dense = head.cholesky().unwrap();
        dense.cholesky_append_rows(&rows).expect("SPD extension must append");
        prop_assert_eq!(batched.to_matrix(), dense);
    }

    #[test]
    fn transpose_preserves_frobenius_norm(values in prop::collection::vec(-10.0..10.0f64, 12)) {
        let m = Matrix::from_vec(3, 4, values).unwrap();
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-10);
    }

    #[test]
    fn l2_distance_satisfies_triangle_inequality(
        a in finite_vec(5), b in finite_vec(5), c in finite_vec(5)
    ) {
        let ab = l2_distance(&a, &b);
        let bc = l2_distance(&b, &c);
        let ac = l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
        prop_assert!(l2_distance(&a, &a) < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone(data in prop::collection::vec(-1e4..1e4f64, 2..200)) {
        let q1 = stats::quantile(&data, 0.1).unwrap();
        let q5 = stats::quantile(&data, 0.5).unwrap();
        let q9 = stats::quantile(&data, 0.9).unwrap();
        prop_assert!(q1 <= q5 && q5 <= q9);
        prop_assert!(q1 >= stats::min(&data).unwrap() - 1e-9);
        prop_assert!(q9 <= stats::max(&data).unwrap() + 1e-9);
    }

    #[test]
    fn fraction_below_is_monotone_in_threshold(
        data in prop::collection::vec(0.0..1e3f64, 1..200),
        t1 in 0.0..1e3f64,
        t2 in 0.0..1e3f64,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(stats::fraction_below(&data, lo) <= stats::fraction_below(&data, hi));
    }

    #[test]
    fn kl_divergence_is_nonnegative_and_zero_on_self(
        data in prop::collection::vec(1.0..500.0f64, 20..200)
    ) {
        let self_kl = stats::kl_divergence(&data, &data).unwrap();
        prop_assert!(self_kl.abs() < 1e-9);
        // Against a shifted copy it must be >= 0.
        let shifted: Vec<f64> = data.iter().map(|v| v + 37.0).collect();
        let kl = stats::kl_divergence(&data, &shifted).unwrap();
        prop_assert!(kl >= 0.0);
    }

    #[test]
    fn histogram_probabilities_sum_to_one(
        data in prop::collection::vec(0.0..100.0f64, 1..300),
        bins in 1usize..64,
        smoothing in 0.0..2.0f64,
    ) {
        let h = stats::Histogram::from_samples(0.0, 100.0, bins, &data).unwrap();
        let probs = h.probabilities(smoothing);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn normal_samples_are_finite(mean in -100.0..100.0f64, std in 0.0..50.0f64, seed in 0u64..1000) {
        let d = Normal::new(mean, std).unwrap();
        let mut rng = seeded_rng(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn gamma_samples_are_positive(shape in 0.1..20.0f64, scale in 0.1..10.0f64, seed in 0u64..1000) {
        let d = Gamma::new(shape, scale).unwrap();
        let mut rng = seeded_rng(seed);
        for _ in 0..50 {
            let v = d.sample(&mut rng);
            prop_assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn lognormal_mean_matches_request(mean in 1.0..500.0f64, std in 0.0..100.0f64) {
        let d = LogNormal::from_mean_std(mean, std).unwrap();
        prop_assert!((d.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    #[test]
    fn empirical_cdf_is_a_cdf(data in prop::collection::vec(-1e3..1e3f64, 1..200)) {
        let cdf = atlas_math::stats::empirical_cdf(&data);
        prop_assert_eq!(cdf.len(), data.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }
}
