//! End-to-end integration test of the three-stage pipeline and of the
//! baselines/regret plumbing that the experiment harness builds on.
//!
//! Iteration counts are kept tiny so the suite stays fast in debug builds;
//! the assertions therefore check structure, invariants and direction of
//! effects rather than the headline numbers (those are exercised by the
//! release-mode experiment harness).

use atlas::baselines::{
    oracle_reference, run_gp_ei_baseline, run_virtual_edge, BaselineConfig, Dlda,
};
use atlas::env::{RealEnv, SimulatorEnv};
use atlas::pipeline::{run_atlas, AtlasConfig};
use atlas::regret::average_regret;
use atlas::{
    OnlineModel, RealNetwork, Scenario, Simulator, Sla, Stage1Config, Stage2Config, Stage3Config,
    SurrogateKind,
};
use atlas_nn::BnnConfig;

fn tiny_config() -> AtlasConfig {
    AtlasConfig {
        stage1: Stage1Config {
            iterations: 6,
            warmup: 2,
            parallel: 2,
            candidates: 200,
            duration_s: 8.0,
            surrogate: SurrogateKind::Gp,
            train_epochs_per_iter: 2,
            ..Stage1Config::default()
        },
        stage2: Stage2Config {
            iterations: 10,
            warmup: 4,
            parallel: 2,
            candidates: 200,
            duration_s: 8.0,
            bnn: BnnConfig {
                hidden: [12, 12, 0, 0],
                epochs: 8,
                ..BnnConfig::default()
            },
            train_epochs_per_iter: 3,
            ..Stage2Config::default()
        },
        stage3: Stage3Config {
            iterations: 5,
            offline_updates: 2,
            candidates: 200,
            duration_s: 8.0,
            ..Stage3Config::default()
        },
        sla: Sla::paper_default(),
        ..AtlasConfig::default()
    }
}

fn scenario() -> Scenario {
    Scenario::default_with_seed(31).with_duration(8.0)
}

#[test]
fn full_pipeline_produces_consistent_artifacts() {
    let real = RealNetwork::prototype();
    let outcome = run_atlas(&real, &scenario(), &tiny_config(), 101);

    let stage1 = outcome.stage1.as_ref().expect("stage 1 ran");
    let stage2 = outcome.stage2.as_ref().expect("stage 2 ran");

    // Stage 1 output feeds the simulator used later.
    assert_eq!(*outcome.simulator.params(), stage1.best_params);
    assert!(stage1.best_discrepancy >= 0.0);
    assert!(stage1.best_distance >= 0.0);

    // Stage 2 produced a policy and its QoE model.
    assert!(stage2.qoe_model.is_some());
    assert!((0.0..=1.0).contains(&stage2.best_qoe));
    assert!((0.0..=1.0).contains(&stage2.best_usage));
    assert_eq!(stage2.history.len(), 10);

    // Stage 3 history is complete, bounded and starts from the offline best.
    assert_eq!(outcome.stage3.history.len(), 5);
    assert_eq!(
        outcome.stage3.history[0].config,
        stage2.best_config.with_connectivity_floor()
    );
    for o in &outcome.stage3.history {
        assert!((0.0..=1.0).contains(&o.qoe));
        assert!((0.0..=1.0).contains(&o.usage));
        assert!(o.config.bandwidth_ul >= 6.0);
        assert!(o.config.bandwidth_dl >= 3.0);
    }
    assert!(outcome.stage3.final_multiplier >= 0.0);
}

#[test]
fn pipeline_is_reproducible_for_a_fixed_seed() {
    let real = RealNetwork::prototype();
    let a = run_atlas(&real, &scenario(), &tiny_config(), 7);
    let b = run_atlas(&real, &scenario(), &tiny_config(), 7);
    assert_eq!(
        a.stage1.as_ref().unwrap().best_params,
        b.stage1.as_ref().unwrap().best_params
    );
    let ha: Vec<_> = a.stage3.history.iter().map(|o| (o.usage, o.qoe)).collect();
    let hb: Vec<_> = b.stage3.history.iter().map(|o| (o.usage, o.qoe)).collect();
    assert_eq!(ha, hb);
}

#[test]
fn online_model_ablations_and_baselines_produce_comparable_histories() {
    let sla = Sla::paper_default();
    let real_net = RealNetwork::prototype();
    let real = RealEnv::new(real_net);
    let simulator = Simulator::with_original_params();
    let sim_env = SimulatorEnv::new(simulator);
    let scenario = scenario();

    // Offline policy shared by the Atlas variants.
    let offline = atlas::OfflineTrainer::new(tiny_config().stage2, sla).run(&sim_env, &scenario, 3);

    // Atlas with the GP-residual online model.
    let atlas_history = atlas::OnlineLearner::new(
        Stage3Config {
            iterations: 4,
            offline_updates: 1,
            candidates: 150,
            duration_s: 8.0,
            online_model: OnlineModel::GpResidual,
            ..Stage3Config::default()
        },
        sla,
        simulator,
        &offline,
    )
    .run(&real, &scenario, 5)
    .usage_qoe_history();

    // Baselines.
    let baseline_cfg = BaselineConfig {
        iterations: 4,
        candidates: 150,
        duration_s: 8.0,
        warmup: 2,
        ..BaselineConfig::default()
    };
    let gp_ei = run_gp_ei_baseline(&real, &sla, &scenario, &baseline_cfg, 6);
    let ve = run_virtual_edge(&real, &sla, &scenario, &baseline_cfg, 7);
    let mut dlda = Dlda::train_offline(&sim_env, &sla, &scenario, 2, 6.0, 8);
    let dlda_hist = dlda.run_online(&real, &sla, &scenario, &baseline_cfg, 9);

    // Same length histories, valid ranges — the property the figures and
    // Table 5 rely on.
    for history in [&gp_ei, &ve, &dlda_hist] {
        assert_eq!(history.len(), 4);
        for o in history.iter() {
            assert!((0.0..=1.0).contains(&o.usage));
            assert!((0.0..=1.0).contains(&o.qoe));
        }
    }
    assert_eq!(atlas_history.len(), 4);

    // Regret computation against an oracle reference works for all of them.
    let reference = oracle_reference(&real, &sla, &scenario, 15, 8.0, 10);
    for history in [
        atlas_history.clone(),
        gp_ei.iter().map(|o| (o.usage, o.qoe)).collect(),
        ve.iter().map(|o| (o.usage, o.qoe)).collect(),
        dlda_hist.iter().map(|o| (o.usage, o.qoe)).collect(),
    ] {
        let (usage_regret, qoe_regret) = average_regret(&history, reference.0, reference.1);
        assert!(usage_regret.is_finite());
        assert!(qoe_regret >= 0.0);
    }
}

#[test]
fn component_ablation_variants_run() {
    let real = RealNetwork::prototype();
    for (skip1, skip2, skip3) in [
        (true, false, false),
        (false, true, false),
        (false, false, true),
    ] {
        let config = AtlasConfig {
            skip_stage1: skip1,
            skip_stage2: skip2,
            skip_stage3: skip3,
            ..tiny_config()
        };
        let outcome = run_atlas(&real, &scenario(), &config, 11);
        assert_eq!(outcome.stage1.is_none(), skip1);
        assert_eq!(outcome.stage2.is_none(), skip2);
        assert_eq!(outcome.stage3.history.len(), 5);
    }
}
