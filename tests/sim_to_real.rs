//! Cross-crate integration tests of the sim-to-real substrate: the
//! discrepancy exists, is uneven, can be reduced by stage-1 calibration,
//! and the QoE model behaves monotonically in the resources the policy
//! controls.

use atlas::env::{collect_latencies, Environment, RealEnv, SimulatorEnv, Sla};
use atlas::{
    RealNetwork, Scenario, SimParams, Simulator, SimulatorCalibration, SliceConfig, Stage1Config,
    SurrogateKind,
};
use atlas_math::stats;

fn deployed() -> SliceConfig {
    SliceConfig::from_vec(&[10.0, 5.0, 0.0, 0.0, 10.0, 0.8])
}

fn scenario(seed: u64) -> Scenario {
    Scenario::default_with_seed(seed).with_duration(10.0)
}

#[test]
fn the_original_simulator_shows_a_nontrivial_discrepancy() {
    let sim = SimulatorEnv::new(Simulator::with_original_params());
    let real = RealEnv::new(RealNetwork::prototype());
    let a = collect_latencies(&sim, &deployed(), &scenario(1));
    let b = collect_latencies(&real, &deployed(), &scenario(2));
    let kl = stats::kl_divergence(&b, &a).unwrap();
    assert!(kl > 0.05, "expected a visible sim-to-real gap, got KL {kl}");
    // The real network is slower on average, like the paper's prototype.
    assert!(stats::mean(&b) > stats::mean(&a));
}

#[test]
fn discrepancy_is_uneven_across_configurations() {
    // Fig. 4: the KL divergence differs across resource configurations.
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let mut kls = Vec::new();
    for cpu in [0.2, 0.9] {
        let cfg = SliceConfig {
            bandwidth_ul: 10.0,
            bandwidth_dl: 5.0,
            mcs_offset_ul: 0.0,
            mcs_offset_dl: 0.0,
            backhaul_bw: 15.0,
            cpu_ratio: cpu,
        };
        let a = sim.run(&cfg, &scenario(3));
        let b = real.run(&cfg, &scenario(4));
        kls.push(stats::kl_divergence(&b.latencies_ms, &a.latencies_ms).unwrap());
    }
    assert!(
        (kls[0] - kls[1]).abs() > 1e-3,
        "discrepancy should vary across configurations: {kls:?}"
    );
}

#[test]
fn stage1_calibration_reduces_the_discrepancy_on_held_out_seeds() {
    let real = RealEnv::new(RealNetwork::prototype());
    let collection = collect_latencies(&real, &deployed(), &scenario(5));
    let calibration = SimulatorCalibration::new(Stage1Config {
        iterations: 14,
        warmup: 4,
        parallel: 2,
        candidates: 300,
        duration_s: 10.0,
        surrogate: SurrogateKind::Gp,
        train_epochs_per_iter: 2,
        ..Stage1Config::default()
    });
    let result = calibration.run(&collection, &deployed(), &scenario(5), 17);

    // Evaluate original vs calibrated on a *fresh* seed to avoid rewarding
    // overfitting to the search seed.
    let fresh = scenario(99);
    let target = RealNetwork::prototype().run(&deployed(), &fresh);
    let original = Simulator::with_original_params().run(&deployed(), &fresh);
    let calibrated = Simulator::new(result.best_params).run(&deployed(), &fresh);
    let kl_original = stats::kl_divergence(&target.latencies_ms, &original.latencies_ms).unwrap();
    let kl_calibrated =
        stats::kl_divergence(&target.latencies_ms, &calibrated.latencies_ms).unwrap();
    assert!(
        kl_calibrated < kl_original * 1.05,
        "calibration should not make the simulator meaningfully worse: {kl_calibrated} vs {kl_original}"
    );
    // A residual gap remains: the testbed has effects (fading, heavy tails)
    // the simulation parameters cannot express.
    assert!(kl_calibrated > 0.0);
}

#[test]
fn qoe_improves_with_resources_in_both_environments() {
    let sla = Sla::paper_default();
    let starved = SliceConfig::from_vec(&[6.0, 3.0, 0.0, 0.0, 3.0, 0.15]);
    let generous = SliceConfig::from_vec(&[30.0, 20.0, 0.0, 0.0, 50.0, 1.0]);
    let sim = SimulatorEnv::new(Simulator::with_original_params());
    let real = RealEnv::new(RealNetwork::prototype());
    for traffic in [1u32, 3] {
        let s = scenario(7).with_traffic(traffic);
        let sim_starved = sim.query(&starved, &s, &sla);
        let sim_generous = sim.query(&generous, &s, &sla);
        assert!(
            sim_generous.qoe >= sim_starved.qoe,
            "simulator: more resources should not reduce QoE (traffic {traffic})"
        );
        let real_starved = real.query(&starved, &s, &sla);
        let real_generous = real.query(&generous, &s, &sla);
        assert!(
            real_generous.qoe >= real_starved.qoe,
            "real network: more resources should not reduce QoE (traffic {traffic})"
        );
        // Resource usage ordering is by construction.
        assert!(sim_generous.usage > sim_starved.usage);
        assert!(real_generous.usage > real_starved.usage);
    }
}

#[test]
fn calibrated_parameters_stay_inside_the_trust_region() {
    let real = RealEnv::new(RealNetwork::prototype());
    let collection = collect_latencies(&real, &deployed(), &scenario(8));
    let config = Stage1Config {
        iterations: 8,
        warmup: 3,
        parallel: 2,
        candidates: 200,
        duration_s: 8.0,
        max_distance: 0.3,
        surrogate: SurrogateKind::Gp,
        train_epochs_per_iter: 2,
        ..Stage1Config::default()
    };
    let result = SimulatorCalibration::new(config).run(&collection, &deployed(), &scenario(8), 23);
    assert!(result.best_distance <= 0.3 + 1e-6);
    for obs in &result.observations {
        assert!(obs.params.distance_from(&SimParams::original()) <= 0.3 + 1e-6);
    }
}
