//! Fast deterministic end-to-end smoke test: drives the full three-stage
//! `run_atlas` pipeline with tiny budgets and checks that the regret
//! arithmetic is finite and the SLA bookkeeping is internally consistent.
//! Designed to stay cheap in debug builds so it can gate every commit.

use atlas::pipeline::{run_atlas, AtlasConfig};
use atlas::regret::{average_regret, RegretTracker};
use atlas::stage3::best_outcome;
use atlas::{RealNetwork, Scenario, Sla, Stage1Config, Stage2Config, Stage3Config, SurrogateKind};
use atlas_nn::BnnConfig;

fn smoke_config() -> AtlasConfig {
    AtlasConfig {
        stage1: Stage1Config {
            iterations: 3,
            warmup: 2,
            parallel: 2,
            candidates: 80,
            duration_s: 4.0,
            surrogate: SurrogateKind::Gp,
            train_epochs_per_iter: 1,
            ..Stage1Config::default()
        },
        stage2: Stage2Config {
            iterations: 4,
            warmup: 2,
            parallel: 2,
            candidates: 80,
            duration_s: 4.0,
            bnn: BnnConfig {
                hidden: [8, 8, 0, 0],
                epochs: 4,
                ..BnnConfig::default()
            },
            train_epochs_per_iter: 1,
            ..Stage2Config::default()
        },
        stage3: Stage3Config {
            iterations: 3,
            offline_updates: 1,
            candidates: 80,
            duration_s: 4.0,
            ..Stage3Config::default()
        },
        sla: Sla::paper_default(),
        ..AtlasConfig::default()
    }
}

#[test]
fn end_to_end_smoke_regret_finite_and_sla_bookkeeping_consistent() {
    let real = RealNetwork::prototype();
    let scenario = Scenario::default_with_seed(1234).with_duration(4.0);
    let sla = Sla::paper_default();
    let outcome = run_atlas(&real, &scenario, &smoke_config(), 2024);

    // All three stages ran and produced the configured number of steps.
    assert!(outcome.stage1.is_some());
    assert!(outcome.stage2.is_some());
    let history = &outcome.stage3.history;
    assert_eq!(history.len(), 3);

    // Every online observation is finite, in range, and its SLA verdict
    // matches the recorded QoE (the bookkeeping the figures rely on).
    for o in history {
        assert!(o.usage.is_finite() && (0.0..=1.0).contains(&o.usage));
        assert!(o.qoe.is_finite() && (0.0..=1.0).contains(&o.qoe));
        assert!(o.simulator_qoe.is_finite());
        assert_eq!(sla.satisfied_by(o.qoe), o.qoe >= sla.qoe_target);
    }

    // The reported best outcome is exactly what best_outcome computes from
    // the history, and the Lagrangian multiplier stayed sane.
    let recomputed = best_outcome(history, &sla);
    assert_eq!(outcome.stage3.best.config, recomputed.config);
    assert!(outcome.stage3.final_multiplier.is_finite());
    assert!(outcome.stage3.final_multiplier >= 0.0);

    // Regret against an arbitrary finite reference is finite, and the
    // incremental tracker agrees with the batch computation.
    let pairs = outcome.stage3.usage_qoe_history();
    let (usage_regret, qoe_regret) = average_regret(&pairs, 0.25, sla.qoe_target);
    assert!(usage_regret.is_finite());
    assert!(qoe_regret.is_finite() && qoe_regret >= 0.0);

    let mut tracker = RegretTracker::new(0.25, sla.qoe_target);
    for (usage, qoe) in &pairs {
        tracker.update(*usage, *qoe);
    }
    assert_eq!(tracker.iterations(), pairs.len());
    assert!((tracker.avg_usage_regret() - usage_regret).abs() < 1e-12);
    assert!((tracker.avg_qoe_regret() - qoe_regret).abs() < 1e-12);
}

#[test]
fn end_to_end_smoke_is_deterministic() {
    let real = RealNetwork::prototype();
    let scenario = Scenario::default_with_seed(1234).with_duration(4.0);
    let a = run_atlas(&real, &scenario, &smoke_config(), 99);
    let b = run_atlas(&real, &scenario, &smoke_config(), 99);
    assert_eq!(
        a.stage3.usage_qoe_history(),
        b.stage3.usage_qoe_history(),
        "same seed must reproduce the same online trajectory"
    );
}
