//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the Atlas property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over `f64`, `u64`, `u32`, `usize` and `i64`,
//! * tuple strategies up to arity 8,
//! * `prop::collection::vec` with exact, `Range` and `RangeInclusive` sizes,
//! * [`strategy::Strategy::prop_map`] and [`strategy::Just`].
//!
//! Differences from real proptest, deliberately accepted for this repo:
//! inputs are drawn from a **fixed deterministic stream** (seeded per test
//! name, identical run-to-run — exactly what CHANGES/CI reproducibility
//! requires), there is no shrinking, and failures panic with the offending
//! assertion rather than a minimised counterexample.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic input stream.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic input stream (SplitMix64), seeded from the test name so
    /// every property explores a distinct but reproducible sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi);
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and basic combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            debug_assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u64, u32, u16, u8, usize);

    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            let span = (self.end - self.start) as u64;
            self.start.wrapping_add((rng.next_u64() % span) as i64)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.range_u64(self.size.lo as u64, self.size.hi as u64 + 1) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the property tests import.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, panicking with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)` body
/// runs `cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64, 10.0..20.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1usize..10, s in 0u64..100) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(s < 100);
        }

        #[test]
        fn vec_sizes_and_maps_work(
            v in prop::collection::vec(0.0..1.0f64, 3..=7),
            (a, b) in pairs().prop_map(|(x, y)| (x, y + 1.0)),
        ) {
            prop_assert!(v.len() >= 3 && v.len() <= 7);
            prop_assert!(v.iter().all(|u| (0.0..1.0).contains(u)));
            prop_assert!(a < 1.0 && b >= 11.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0.0..1.0f64, 5usize);
        let a = strat.generate(&mut TestRng::deterministic("x"));
        let b = strat.generate(&mut TestRng::deterministic("x"));
        assert_eq!(a, b);
    }
}
