//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface `crates/bench/benches/components.rs` uses —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`] — as a plain wall-clock
//! harness: each benchmark is warmed up once, timed for `sample_size`
//! iterations and reported as mean ns/iter on stdout. No statistics, plots
//! or HTML reports; swap the real crate back in for those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: u64,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / self.sample_size as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        println!("bench {id:<60} {:>14.1} ns/iter", b.last_ns_per_iter);
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
