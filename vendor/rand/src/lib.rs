//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the surface the Atlas workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with the generic [`Rng::random`] method for `f64`,
//!   `u64`, `u32`, `usize` and `bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic across platforms and runs, which is all the workspace
//!   requires; it makes no cryptographic claims),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no source changes are required.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator's output stream
/// (the stand-in for rand's `StandardUniform` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing generator interface.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed across platforms and runs; not
    /// cryptographically secure (the real `StdRng` is ChaCha-based, but
    /// nothing in this workspace relies on that).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random shuffling of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias is negligible for the slice lengths used here
                // and irrelevant to correctness.
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }
}
