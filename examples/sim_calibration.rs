//! Stage 1 in isolation: calibrate the simulator's parameters against a
//! latency collection logged from the (emulated) real network, and show how
//! much of the sim-to-real discrepancy the search removes.
//!
//! ```sh
//! cargo run --release --example sim_calibration
//! ```

use atlas::env::{collect_latencies, RealEnv};
use atlas::{
    RealNetwork, Scenario, SimParams, SimulatorCalibration, SliceConfig, Stage1Config,
    SurrogateKind,
};

fn main() {
    let real = RealEnv::new(RealNetwork::prototype());
    // The configuration currently deployed for the slice while the operator
    // logs its performance (the "online collection" D_r of the paper).
    let deployed = SliceConfig::from_vec(&[10.0, 5.0, 0.0, 0.0, 10.0, 0.8]);
    let scenario = Scenario::default_with_seed(3).with_duration(12.0);
    let real_latencies = collect_latencies(&real, &deployed, &scenario);
    println!(
        "collected {} latency samples from the deployed slice (mean {:.1} ms)",
        real_latencies.len(),
        real_latencies.iter().sum::<f64>() / real_latencies.len() as f64
    );

    let calibration = SimulatorCalibration::new(Stage1Config {
        iterations: 40,
        warmup: 10,
        parallel: 4,
        candidates: 800,
        duration_s: 12.0,
        surrogate: SurrogateKind::Bnn,
        ..Stage1Config::default()
    });

    // Discrepancy of the original, specification-derived parameters.
    let original = calibration.evaluate(
        &SimParams::original(),
        &real_latencies,
        &deployed,
        &scenario,
        1,
    );
    println!(
        "original simulator discrepancy : {:.3}",
        original.discrepancy
    );

    let result = calibration.run(&real_latencies, &deployed, &scenario, 11);
    println!(
        "calibrated discrepancy         : {:.3}",
        result.best_discrepancy
    );
    println!(
        "parameter distance             : {:.3}",
        result.best_distance
    );
    println!(
        "discrepancy reduction          : {:.1}%",
        (1.0 - result.best_discrepancy / original.discrepancy) * 100.0
    );
    println!("best simulation parameters     : {:?}", result.best_params);

    println!("\nsearch progress (average weighted discrepancy):");
    for h in result.history.iter().step_by(5) {
        println!(
            "  iter {:>3}: avg {:.3}  best-so-far {:.3}",
            h.iteration, h.avg_weighted_discrepancy, h.best_weighted_so_far
        );
    }
}
