//! Sharded fleets at operator scale: partition a large fleet's slice
//! sessions across fixed worker shards (`Orchestrator::with_shards`) and
//! show that sharding is a pure performance transform — every shard count
//! produces the bit-identical run, because slices are pinned to
//! `admission_index % shards` at admission and the per-shard round batches
//! are merged back into admission order before the single shared grant.
//!
//! The example (a) sweeps shard counts over a fixed fleet, printing
//! per-round wall-clock and asserting bit-identity against the unsharded
//! reference, and (b) drives mid-run admissions/retirements through a
//! sharded `FleetRun`, showing lifecycle events land on their fixed
//! shards.
//!
//! ```sh
//! cargo run --release --example online_sharded            # bench-sized fleet
//! cargo run --release --example online_sharded -- --quick # CI smoke
//! ```

use atlas::env::Sla;
use atlas::{OnlineLearner, Scenario, Simulator, Stage3Config};
use atlas_netsim::{RealNetwork, SharedTestbed};
use atlas_orchestrator::{Orchestrator, SliceSpec};
use std::time::Instant;

/// A heterogeneous fleet of `n` short slices.
fn fleet(n: u64) -> Vec<SliceSpec> {
    (0..n)
        .map(|i| {
            let sla = Sla::new(250.0 + 25.0 * (i % 3) as f64, 0.85 + 0.02 * (i % 2) as f64);
            let config = Stage3Config {
                iterations: 2,
                offline_updates: 1,
                candidates: 60,
                duration_s: 2.0,
                ..Stage3Config::default()
            };
            let learner =
                OnlineLearner::without_offline(config, sla, Simulator::with_original_params());
            let scenario = Scenario::default_with_seed(i)
                .with_duration(2.0)
                .with_traffic(1 + (i as u32) % 3)
                .with_distance(1.0 + 2.0 * (i % 5) as f64);
            SliceSpec::new(format!("slice-{i}"), learner, scenario, 7000 + 11 * i)
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let slices: u64 = if quick { 48 } else { 1000 };
    let network = RealNetwork::prototype();

    // ---- shard-count sweep over a fixed fleet --------------------------
    println!("fleet: {slices} slices x 2 online iterations\n");
    let mut reference = None;
    for shards in [1usize, 2, 4, 8] {
        let orchestrator = Orchestrator::new(SharedTestbed::new(network))
            .with_threads(4)
            .with_shards(shards);
        let start = Instant::now();
        let report = orchestrator.run(fleet(slices));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let per_round_ms = ms / report.rounds.max(1) as f64;
        println!(
            "[{shards} shard{}] {} queries over {} rounds in {ms:.0} ms \
             ({per_round_ms:.1} ms/round)  SLA-viol {:.1}%  usage {:.1}%",
            if shards == 1 { " " } else { "s" },
            report.total_queries,
            report.rounds,
            report.sla_violation_rate * 100.0,
            report.mean_usage * 100.0,
        );
        match &reference {
            None => reference = Some(report),
            Some(reference) => {
                assert_eq!(
                    &report, reference,
                    "sharding must be a pure performance transform"
                );
                println!("           bit-identical to the unsharded run");
            }
        }
    }

    // ---- mid-run churn over a sharded fleet ----------------------------
    // Admissions take the next admission index (round-robin over shards),
    // retirements leave the survivors' shards untouched.
    println!("\nmid-run churn over 4 shards:");
    let orchestrator = Orchestrator::new(SharedTestbed::new(network))
        .with_threads(4)
        .with_shards(4);
    let mut run = orchestrator.begin();
    let churn_fleet = fleet(8);
    let (initial, late) = churn_fleet.split_at(6);
    for spec in initial.iter().cloned() {
        run.admit(spec).unwrap();
    }
    for name in ["slice-0", "slice-3", "slice-5"] {
        println!(
            "  {name} admitted on shard {}",
            run.shard_of(name).expect("active slice has a shard")
        );
    }
    let round = run.step().expect("six active slices");
    assert_eq!(round.queries, 6);
    // Between rounds: two arrivals, one retirement.
    for spec in late.iter().cloned() {
        run.admit(spec).unwrap();
    }
    run.retire("slice-1").expect("slice-1 is active");
    assert_eq!(run.shard_of("slice-6"), Some(2), "admission index 6 % 4");
    assert_eq!(run.shard_of("slice-7"), Some(3), "admission index 7 % 4");
    assert_eq!(run.shard_of("slice-5"), Some(1), "survivors never migrate");
    println!(
        "  slice-1 retired; slice-6 -> shard {}, slice-7 -> shard {}, slice-5 stays on shard {}",
        run.shard_of("slice-6").unwrap(),
        run.shard_of("slice-7").unwrap(),
        run.shard_of("slice-5").unwrap(),
    );
    while run.step().is_some() {}
    let report = run.finish();
    assert_eq!(report.slices.len(), 8, "all eight slices leave a report");
    assert!(report.slice("slice-1").unwrap().span.retired_early);
    println!(
        "  drained: {} slices reported over {} rounds, {} queries",
        report.slices.len(),
        report.rounds,
        report.total_queries,
    );
}
