//! Multi-slice orchestration: run many slices' stage-3 online loops
//! concurrently against one shared (emulated) testbed, with a shared query
//! scheduler fanning each round's measurements out over worker threads and
//! an aggregate report of fleet-wide SLA compliance, usage and regret.
//!
//! In full mode the fleet is warm-started the way the paper runs Atlas:
//! one stage-2 offline policy is trained per traffic class in the
//! simulator, and every slice's online learner starts from its class's
//! policy. Quick mode (`--quick`, used by CI) skips the offline stage and
//! runs a cold-start smoke fleet instead.
//!
//! The orchestrated run is bit-for-bit identical to running every slice
//! sequentially with `OnlineLearner::run` on the same seeds — this example
//! checks that property on the first slice before printing the report.
//!
//! ```sh
//! cargo run --release --example online_multislice            # full fleet
//! cargo run --release --example online_multislice -- --quick # CI smoke
//! ```

use atlas::env::{RealEnv, SimulatorEnv, Sla};
use atlas::{
    OfflineTrainer, OnlineLearner, Scenario, Simulator, Stage2Config, Stage2Result, Stage3Config,
};
use atlas_netsim::{RealNetwork, SharedTestbed};
use atlas_orchestrator::{Orchestrator, SliceSpec};

/// One stage-2 offline policy per traffic class (trained in the shared
/// augmented simulator — the per-slice warm start of Sec. 8.3).
fn offline_policies(sla: Sla, classes: u32, duration_s: f64) -> Vec<Stage2Result> {
    let simulator = Simulator::with_original_params();
    let sim_env = SimulatorEnv::new(simulator);
    (1..=classes)
        .map(|traffic| {
            let trainer = OfflineTrainer::new(
                Stage2Config {
                    iterations: 25,
                    warmup: 8,
                    parallel: 4,
                    candidates: 400,
                    duration_s,
                    ..Stage2Config::default()
                },
                sla,
            );
            let scenario = Scenario::default_with_seed(u64::from(traffic))
                .with_duration(duration_s)
                .with_traffic(traffic);
            trainer.run(&sim_env, &scenario, 300 + u64::from(traffic))
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let slices = 8u64;
    let (iterations, duration_s) = if quick { (2, 2.0) } else { (12, 6.0) };
    let sla = Sla::paper_default();

    // Warm starts: one offline policy per traffic class (full mode only).
    let policies = if quick {
        Vec::new()
    } else {
        println!("training offline policies for 3 traffic classes ...");
        offline_policies(sla, 3, duration_s)
    };

    // A heterogeneous fleet sharing one testbed: per-slice traffic and
    // distance, as across an operator's tenants. Each slice gets its own
    // seed, so per-slice RNG streams never interleave no matter how the
    // scheduler runs them.
    let specs: Vec<SliceSpec> = (0..slices)
        .map(|i| {
            let traffic = 1 + (i as u32) % 3;
            let config = Stage3Config {
                iterations,
                offline_updates: 2,
                candidates: 300,
                duration_s,
                ..Stage3Config::default()
            };
            let simulator = Simulator::with_original_params();
            let learner = match policies.get((traffic - 1) as usize) {
                Some(offline) => OnlineLearner::new(config, sla, simulator, offline),
                None => OnlineLearner::without_offline(config, sla, simulator),
            };
            let scenario = Scenario::default_with_seed(i)
                .with_duration(duration_s)
                .with_traffic(traffic)
                .with_distance(1.0 + 2.0 * (i % 3) as f64);
            SliceSpec::new(format!("slice-{i}"), learner, scenario, 7000 + 11 * i)
        })
        .collect();

    // Determinism spot check: slice 0 run sequentially must match its
    // orchestrated twin exactly.
    let network = RealNetwork::prototype();
    let solo = specs[0]
        .learner
        .run(&RealEnv::new(network), &specs[0].scenario, specs[0].seed);

    let orchestrator = Orchestrator::over_testbed(SharedTestbed::new(network).with_threads(4));
    let report = orchestrator.run(specs);

    assert_eq!(
        report.slices[0].result, solo,
        "orchestrated slice-0 must be bit-identical to its sequential run"
    );

    println!(
        "orchestrated {} slices over a shared testbed ({} rounds, {} queries):\n",
        report.slices.len(),
        report.rounds,
        report.total_queries
    );
    print!("{}", report.summary());
    println!("\n(slice-0 verified bit-identical to its sequential single-slice run)");
}
