//! Stage 2 in isolation: learn the cheapest SLA-satisfying slice
//! configuration inside the simulator with the BNN + parallel Thompson
//! sampling + adaptive Lagrangian method, and compare it against a GP-EI
//! offline baseline.
//!
//! ```sh
//! cargo run --release --example offline_policy
//! ```

use atlas::env::SimulatorEnv;
use atlas::stage2::OfflineStrategy;
use atlas::{Acquisition, OfflineTrainer, Scenario, Simulator, Sla, Stage2Config};

fn main() {
    let sla = Sla::paper_default();
    let scenario = Scenario::default_with_seed(5).with_duration(10.0);
    let env = SimulatorEnv::new(Simulator::with_original_params());

    let base = Stage2Config {
        iterations: 50,
        warmup: 15,
        parallel: 4,
        candidates: 800,
        duration_s: 10.0,
        ..Stage2Config::default()
    };

    println!("offline training: ours (BNN + parallel Thompson + adaptive penalisation)");
    let ours = OfflineTrainer::new(base, sla).run(&env, &scenario, 21);
    for h in ours.history.iter().step_by(10) {
        println!(
            "  iter {:>3}: avg usage {:>5.1}%  avg QoE {:.3}  lambda {:.3}",
            h.iteration,
            h.avg_usage * 100.0,
            h.avg_qoe,
            h.multiplier
        );
    }
    println!(
        "  best: usage {:.1}% QoE {:.3}  config {:?}\n",
        ours.best_usage * 100.0,
        ours.best_qoe,
        ours.best_config
    );

    println!("offline training: GP-EI baseline (scalarised objective)");
    let gp_cfg = Stage2Config {
        strategy: OfflineStrategy::GpAcquisition(Acquisition::ExpectedImprovement),
        ..base
    };
    let gp = OfflineTrainer::new(gp_cfg, sla).run(&env, &scenario, 22);
    println!(
        "  best: usage {:.1}% QoE {:.3}",
        gp.best_usage * 100.0,
        gp.best_qoe
    );

    println!(
        "\nsummary: ours uses {:.1}% of resources vs {:.1}% for GP-EI (both should meet QoE >= {}).",
        ours.best_usage * 100.0,
        gp.best_usage * 100.0,
        sla.qoe_target
    );
}
