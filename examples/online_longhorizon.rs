//! Bounded-memory long-horizon learning: one effectively-infinite-horizon
//! slice (5 000 online iterations under `WindowPolicy::SlidingWindow`,
//! capacity 512) sharing a testbed with a churn of short-lived slices.
//!
//! The point of the window: a slice that lives for the lifetime of its
//! tenancy — days, not a few hundred decision rounds — must not pay
//! O(n²) per observation and O(35·n²/2) resident factor memory forever.
//! With a sliding window the residual GP's retained observation count
//! (asserted below via `FleetRun::residual_observations`) and therefore
//! its per-round cost and footprint **plateau at the capacity**, while
//! the churning slices run exactly as before. The whole mixed fleet is
//! bit-for-bit identical across scheduler thread counts.
//!
//! ```sh
//! cargo run --release --example online_longhorizon            # 5k iterations
//! cargo run --release --example online_longhorizon -- --quick # CI smoke
//! ```

use atlas::env::Sla;
use atlas::{OnlineLearner, Scenario, Simulator, Stage3Config, WindowPolicy};
use atlas_netsim::{RealNetwork, SharedTestbed};
use atlas_orchestrator::{FleetReport, Orchestrator, SliceSpec};

const LONG_SLICE: &str = "long-horizon";

struct Sizes {
    long_iterations: usize,
    window_capacity: usize,
    churn_every_rounds: usize,
    churn_iterations: usize,
}

fn long_slice_spec(sizes: &Sizes) -> SliceSpec {
    let learner = OnlineLearner::without_offline(
        Stage3Config {
            iterations: sizes.long_iterations,
            offline_updates: 1,
            candidates: 60,
            duration_s: 2.0,
            ..Stage3Config::default()
        },
        Sla::paper_default(),
        Simulator::with_original_params(),
    );
    SliceSpec::new(
        LONG_SLICE,
        learner,
        Scenario::default_with_seed(7).with_duration(2.0),
        4242,
    )
    .with_gp_window(WindowPolicy::SlidingWindow {
        capacity: sizes.window_capacity,
    })
}

fn churn_spec(k: u64, sizes: &Sizes) -> SliceSpec {
    let learner = OnlineLearner::without_offline(
        Stage3Config {
            iterations: sizes.churn_iterations,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        },
        Sla::new(250.0 + 25.0 * (k % 3) as f64, 0.85 + 0.02 * (k % 2) as f64),
        Simulator::with_original_params(),
    );
    SliceSpec::new(
        format!("churn-{k}"),
        learner,
        Scenario::default_with_seed(k)
            .with_duration(2.0)
            .with_traffic(1 + (k as u32) % 3),
        9000 + 13 * k,
    )
}

/// Runs the mixed fleet: the windowed long-horizon slice for its whole
/// budget, plus a fresh short-lived slice admitted every
/// `churn_every_rounds` rounds. Returns the folded report and the peak
/// retained-observation count of the long slice's residual model.
fn run_fleet(sizes: &Sizes, threads: usize) -> (FleetReport, usize) {
    let testbed = SharedTestbed::new(RealNetwork::prototype());
    let orchestrator = Orchestrator::new(testbed).with_threads(threads);
    let mut fleet = orchestrator.begin();
    fleet
        .admit(long_slice_spec(sizes))
        .expect("long slice admits");
    let mut next_churner = 0u64;
    let mut peak = 0usize;
    while fleet.residual_observations(LONG_SLICE).is_some() {
        if fleet.rounds() % sizes.churn_every_rounds == 0 {
            fleet
                .admit(churn_spec(next_churner, sizes))
                .expect("churn slice admits");
            next_churner += 1;
        }
        fleet.step().expect("active slices step");
        if let Some(retained) = fleet.residual_observations(LONG_SLICE) {
            peak = peak.max(retained);
        }
        if fleet.rounds() % 500 == 0 {
            println!(
                "  round {:>5}: long-horizon retains {:>4} observations, {} active slices",
                fleet.rounds(),
                fleet.residual_observations(LONG_SLICE).unwrap_or(0),
                fleet.active_count(),
            );
        }
    }
    // Drain whatever churners outlive the long slice.
    while fleet.step().is_some() {}
    (fleet.finish(), peak)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick {
        Sizes {
            long_iterations: 250,
            window_capacity: 48,
            churn_every_rounds: 25,
            churn_iterations: 3,
        }
    } else {
        Sizes {
            long_iterations: 5000,
            window_capacity: 512,
            churn_every_rounds: 250,
            churn_iterations: 5,
        }
    };
    println!(
        "long-horizon slice: {} iterations under SlidingWindow {{ capacity: {} }}, \
         churner every {} rounds\n",
        sizes.long_iterations, sizes.window_capacity, sizes.churn_every_rounds
    );

    let (report, peak) = run_fleet(&sizes, 2);
    let long = report.slice(LONG_SLICE).expect("long slice reported");
    println!(
        "\nlong-horizon slice: {} iterations observed, peak retained observations {} \
         (window capacity {}), SLA violations {:.1}%",
        long.iterations(),
        peak,
        sizes.window_capacity,
        long.sla_violation_rate * 100.0,
    );
    println!(
        "fleet: {} slices reported over {} rounds, {} queries total",
        report.slices.len(),
        report.rounds,
        report.total_queries
    );

    // The whole point: the residual model plateaued at the window capacity
    // even though the slice observed an order of magnitude more rounds.
    assert_eq!(long.iterations(), sizes.long_iterations);
    assert_eq!(
        peak, sizes.window_capacity,
        "peak retained observations must equal the window capacity"
    );

    // And the mixed fleet stays bit-for-bit identical across scheduler
    // thread counts, peak plateau included.
    let (again, peak_again) = run_fleet(&sizes, 1);
    assert_eq!(again, report, "fleet must be thread-count independent");
    assert_eq!(peak_again, peak);
    println!("\nverified: plateau at capacity, bit-identical across thread counts");
}
