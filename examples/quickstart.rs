//! Quickstart: run the full three-stage Atlas pipeline against the emulated
//! testbed and print what each stage produced.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The iteration counts are scaled down so the example finishes in well
//! under a minute; see `atlas-bench` for the full experiment harness.

use atlas::pipeline::{run_atlas, AtlasConfig};
use atlas::{RealNetwork, Scenario, Sla, Stage1Config, Stage2Config, Stage3Config, SurrogateKind};

fn main() {
    let real = RealNetwork::prototype();
    let scenario = Scenario::default_with_seed(7).with_duration(10.0);

    let config = AtlasConfig {
        stage1: Stage1Config {
            iterations: 20,
            warmup: 6,
            parallel: 4,
            candidates: 500,
            duration_s: 10.0,
            surrogate: SurrogateKind::Bnn,
            ..Stage1Config::default()
        },
        stage2: Stage2Config {
            iterations: 30,
            warmup: 10,
            parallel: 4,
            candidates: 500,
            duration_s: 10.0,
            ..Stage2Config::default()
        },
        stage3: Stage3Config {
            iterations: 15,
            offline_updates: 3,
            candidates: 500,
            duration_s: 10.0,
            ..Stage3Config::default()
        },
        sla: Sla::paper_default(),
        ..AtlasConfig::default()
    };

    println!("running Atlas (stage 1 -> stage 2 -> stage 3)...\n");
    let outcome = run_atlas(&real, &scenario, &config, 42);

    if let Some(stage1) = &outcome.stage1 {
        println!("stage 1 (learning-based simulator):");
        println!("  sim-to-real discrepancy : {:.3}", stage1.best_discrepancy);
        println!("  parameter distance      : {:.3}", stage1.best_distance);
        println!("  best parameters         : {:?}\n", stage1.best_params);
    }
    if let Some(stage2) = &outcome.stage2 {
        println!("stage 2 (offline training in the augmented simulator):");
        println!("  best configuration      : {:?}", stage2.best_config);
        println!(
            "  offline usage / QoE     : {:.1}% / {:.3}\n",
            stage2.best_usage * 100.0,
            stage2.best_qoe
        );
    }
    println!("stage 3 (online learning on the real network):");
    for outcome in outcome.stage3.history.iter().step_by(3) {
        println!(
            "  iter {:>3}: usage {:>5.1}%  QoE {:.3}  (simulator predicted {:.3})",
            outcome.iteration,
            outcome.usage * 100.0,
            outcome.qoe,
            outcome.simulator_qoe
        );
    }
    println!(
        "\nbest online configuration: usage {:.1}% at QoE {:.3}",
        outcome.stage3.best.usage * 100.0,
        outcome.stage3.best.qoe
    );
}
