//! Elastic fleets over a contended testbed: a deterministic Poisson-ish
//! churn workload (slices arrive over time and are retired when their
//! tenancy expires) driven through the steppable `FleetRun` API against a
//! shared testbed with a *finite* resource budget, at three budget
//! tightness levels:
//!
//! * `unlimited`  — the PR 3 substrate: every demand is granted verbatim;
//! * `carrier 1x` — one 10 MHz carrier, 100 Mbps backhaul, 4 CPUs;
//! * `carrier 0.5x` — half of everything: grants are scaled and the
//!   budget-headroom admission policy starts rejecting slice orders.
//!
//! Every run is bit-for-bit reproducible for every scheduler thread count
//! (asserted below for the tight level), and the tight levels must show a
//! real granted-vs-requested gap.
//!
//! ```sh
//! cargo run --release --example online_churn            # bench-sized fleet
//! cargo run --release --example online_churn -- --quick # CI smoke
//! ```

use atlas_netsim::{RealNetwork, ResourceBudget, SharedTestbed};
use atlas_orchestrator::{
    AcceptAll, AdmissionPolicy, ChurnConfig, ChurnWorkload, HeadroomThreshold, Orchestrator,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        ChurnConfig::quick(42)
    } else {
        ChurnConfig::bench(42, 12)
    };
    let workload = ChurnWorkload::generate(&config);
    println!(
        "churn workload: {} scheduled arrivals over {} rounds (cap {} concurrent)\n",
        workload.arrivals.len(),
        config.horizon_rounds,
        config.max_concurrent
    );

    let levels: [(&str, Option<ResourceBudget>); 3] = [
        ("unlimited", None),
        ("carrier 1x", Some(ResourceBudget::carrier_default())),
        (
            "carrier 0.5x",
            Some(ResourceBudget::carrier_default().scaled(0.5)),
        ),
    ];

    for (label, budget) in levels {
        let testbed = match budget {
            Some(b) => SharedTestbed::new(RealNetwork::prototype()).with_budget(b),
            None => SharedTestbed::new(RealNetwork::prototype()),
        };
        let orchestrator = Orchestrator::new(testbed).with_threads(4);
        let policy: Box<dyn AdmissionPolicy> = match budget {
            Some(_) => Box::new(HeadroomThreshold { max_occupancy: 1.5 }),
            None => Box::new(AcceptAll),
        };
        let (report, rounds) = workload.drive(&orchestrator, policy);
        println!(
            "[{label:>12}] {} slices reported, {} rounds, {} queries, \
             rejected {}, grant gap {:.2}%, SLA-viol {:.1}%",
            report.slices.len(),
            report.rounds,
            report.total_queries,
            report.rejected_admissions,
            report.mean_grant_gap * 100.0,
            report.sla_violation_rate * 100.0,
        );
        for round in &rounds {
            if !round.admitted.is_empty() || !round.retired.is_empty() || !round.rejected.is_empty()
            {
                println!(
                    "    round {:>2}: {} queries, +{:?} -{:?} rejected {:?}, \
                     occupancy {:.2}, gap {:.2}%",
                    round.round,
                    round.queries,
                    round.admitted,
                    round.retired,
                    round.rejected,
                    round.occupancy,
                    round.grant_gap() * 100.0,
                );
            }
        }

        match budget {
            None => {
                assert_eq!(
                    report.mean_grant_gap, 0.0,
                    "an unlimited budget never scales grants"
                );
                assert_eq!(report.rejected_admissions, 0);
            }
            Some(b) if b.ul_prbs < 50.0 => {
                // The tight level must actually contend...
                assert!(
                    report.mean_grant_gap > 0.0,
                    "a half carrier under churn must scale grants"
                );
                // ...and stay deterministic across scheduler thread counts.
                for threads in [1, 2] {
                    let again = Orchestrator::new(
                        SharedTestbed::new(RealNetwork::prototype()).with_budget(b),
                    )
                    .with_threads(threads);
                    let (other, other_rounds) =
                        workload.drive(&again, Box::new(HeadroomThreshold { max_occupancy: 1.5 }));
                    assert_eq!(other, report, "churn must be thread-count independent");
                    assert_eq!(other_rounds, rounds);
                }
                println!("    (verified bit-identical across scheduler thread counts)");
            }
            Some(_) => {}
        }
        println!();
    }
}
