//! Compare Atlas online learning against the paper's baselines (GP-EI
//! "Baseline", VirtualEdge, DLDA) on the emulated testbed and report
//! average resource usage, average QoE and SLA violations.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use atlas::baselines::{run_gp_ei_baseline, run_virtual_edge, BaselineConfig, Dlda};
use atlas::env::{RealEnv, SimulatorEnv};
use atlas::{
    OfflineTrainer, OnlineLearner, RealNetwork, Scenario, Simulator, Sla, Stage2Config,
    Stage3Config,
};

fn summarise(name: &str, history: &[(f64, f64)], sla: &Sla) {
    let n = history.len() as f64;
    let avg_usage: f64 = history.iter().map(|(u, _)| u).sum::<f64>() / n;
    let avg_qoe: f64 = history.iter().map(|(_, q)| q).sum::<f64>() / n;
    let violations = history.iter().filter(|(_, q)| *q < sla.qoe_target).count();
    println!(
        "  {name:<12} avg usage {:>5.1}%   avg QoE {:.3}   SLA violations {}/{}",
        avg_usage * 100.0,
        avg_qoe,
        violations,
        history.len()
    );
}

fn main() {
    let sla = Sla::paper_default();
    let scenario = Scenario::default_with_seed(13).with_duration(10.0);
    let real = RealEnv::new(RealNetwork::prototype());
    let simulator = Simulator::with_original_params();
    let sim_env = SimulatorEnv::new(simulator);
    let iterations = 20;

    let baseline_cfg = BaselineConfig {
        iterations,
        candidates: 800,
        duration_s: 10.0,
        ..BaselineConfig::default()
    };

    println!("online learning comparison over {iterations} iterations (Y = 300 ms, E = 0.9):");

    // Baseline: GP-EI directly online.
    let gp_ei = run_gp_ei_baseline(&real, &sla, &scenario, &baseline_cfg, 1);
    summarise(
        "Baseline",
        &gp_ei.iter().map(|o| (o.usage, o.qoe)).collect::<Vec<_>>(),
        &sla,
    );

    // VirtualEdge.
    let ve = run_virtual_edge(&real, &sla, &scenario, &baseline_cfg, 2);
    summarise(
        "VirtualEdge",
        &ve.iter().map(|o| (o.usage, o.qoe)).collect::<Vec<_>>(),
        &sla,
    );

    // DLDA: offline grid training then online fine-tuning.
    let mut dlda = Dlda::train_offline(&sim_env, &sla, &scenario, 3, 10.0, 3);
    let dlda_hist = dlda.run_online(&real, &sla, &scenario, &baseline_cfg, 4);
    summarise(
        "DLDA",
        &dlda_hist
            .iter()
            .map(|o| (o.usage, o.qoe))
            .collect::<Vec<_>>(),
        &sla,
    );

    // Atlas: stage 2 offline + stage 3 online.
    let offline = OfflineTrainer::new(
        Stage2Config {
            iterations: 40,
            warmup: 12,
            parallel: 4,
            candidates: 800,
            duration_s: 10.0,
            ..Stage2Config::default()
        },
        sla,
    )
    .run(&sim_env, &scenario, 5);
    let atlas_online = OnlineLearner::new(
        Stage3Config {
            iterations,
            offline_updates: 5,
            candidates: 800,
            duration_s: 10.0,
            ..Stage3Config::default()
        },
        sla,
        simulator,
        &offline,
    )
    .run(&real, &scenario, 6);
    summarise("Atlas (ours)", &atlas_online.usage_qoe_history(), &sla);
}
