//! Stages 2 + 3: train an offline policy in the simulator, then learn
//! online on the (emulated) real network with the safe, sample-efficient
//! residual-GP learner and the conservative cRGP-UCB acquisition.
//!
//! ```sh
//! cargo run --release --example online_slicing
//! ```

use atlas::baselines::oracle_reference;
use atlas::env::{RealEnv, SimulatorEnv};
use atlas::regret::average_regret;
use atlas::{
    OfflineTrainer, OnlineLearner, RealNetwork, Scenario, Simulator, Sla, Stage2Config,
    Stage3Config,
};

fn main() {
    let sla = Sla::paper_default();
    let scenario = Scenario::default_with_seed(9).with_duration(10.0);
    let simulator = Simulator::with_original_params();
    let sim_env = SimulatorEnv::new(simulator);
    let real = RealEnv::new(RealNetwork::prototype());

    // Offline policy (stage 2).
    let offline = OfflineTrainer::new(
        Stage2Config {
            iterations: 40,
            warmup: 12,
            parallel: 4,
            candidates: 800,
            duration_s: 10.0,
            ..Stage2Config::default()
        },
        sla,
    )
    .run(&sim_env, &scenario, 31);
    println!(
        "offline policy: usage {:.1}% with simulator QoE {:.3}",
        offline.best_usage * 100.0,
        offline.best_qoe
    );

    // Online learning (stage 3).
    let learner = OnlineLearner::new(
        Stage3Config {
            iterations: 25,
            offline_updates: 5,
            candidates: 800,
            duration_s: 10.0,
            ..Stage3Config::default()
        },
        sla,
        simulator,
        &offline,
    );
    let online = learner.run(&real, &scenario, 37);

    println!("\nonline learning on the real network:");
    for o in online.history.iter().step_by(4) {
        println!(
            "  iter {:>3}: usage {:>5.1}%  real QoE {:.3}  sim QoE {:.3}",
            o.iteration,
            o.usage * 100.0,
            o.qoe,
            o.simulator_qoe
        );
    }

    // Regret against an oracle reference policy.
    let reference = oracle_reference(&real, &sla, &scenario, 60, 10.0, 41);
    let (usage_regret, qoe_regret) =
        average_regret(&online.usage_qoe_history(), reference.0, reference.1);
    println!(
        "\nreference policy (oracle search): usage {:.1}% QoE {:.3}",
        reference.0 * 100.0,
        reference.1
    );
    println!(
        "average regret over {} online iterations: usage {:+.2}%, QoE {:.3}",
        online.history.len(),
        usage_regret * 100.0,
        qoe_regret
    );
    println!(
        "best online configuration: usage {:.1}% at QoE {:.3}",
        online.best.usage * 100.0,
        online.best.qoe
    );
}
